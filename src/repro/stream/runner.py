"""The streaming evaluation engine: play a mailstream tick by tick.

:class:`StreamRunner` generalizes the Section 2.1 weekly retraining
loop into the engine-layer workload the scenario registry, the shared
worker pool and the replication engine all understand:

* the **arrival schedule** comes from a declarative
  :class:`~repro.stream.spec.StreamSpec` (constant / linear / burst
  attack ramps over a steady legitimate stream);
* the classifier is **incremental** — training is count-addition, so
  each tick's retrain ingests only that tick's accepted arrivals; no
  tick ever retrains from scratch, and a T-tick stream trains each
  message exactly once;
* the **held-out evaluation** runs every tick through
  :meth:`~repro.spambayes.classifier.Classifier.score_workspace` over a
  test set encoded once against the stream's shared table — the
  columnar bulk kernel with a reusable scoring workspace, not a
  per-message scoring loop;
* the optional **clean counterfactual** (``spec.measure_clean``) is a
  *clean twin*: a second classifier sharing the stream's table,
  incrementally trained on exactly the accepted non-attack arrivals.
  Training is count-addition, so the twin's state is bit-identical to
  "the main classifier with every trained attack message unlearned" —
  the "what if no poison had ever arrived" curve at O(tick) cost
  instead of an O(history) unlearn excursion per tick.  The original
  snapshot/unlearn-all/restore path is retained
  (``counterfactual="unlearn"``) as the executable reference the
  differential suite replays against the twin;
* per-tick **defenses** are pluggable
  (:mod:`repro.stream.defenses`): none, the RONI gate recalibrated on
  accepted mail, or per-tick refitted dynamic thresholds.

**Seed streams.**  The runner inherits the legacy weekly loop's labels
verbatim — root ``spawn("retraining")``, corpus ``child_seed("corpus")``,
one ``rng(f"week[{tick}]")`` per tick, consumed in the historical
order (attack batch, then gate, then threshold fit) — so a spec built
by :meth:`StreamSpec.from_retraining` reproduces
``run_retraining_simulation`` draw for draw, field for field
(``tests/test_stream_vs_retraining.py`` proves it), and every other
spec extends that contract rather than forking it.  The clean twin
draws nothing: it re-trains already-encoded messages and re-scores
already-encoded rows, so enabling ``measure_clean`` never moves a
draw.

**Profiling.**  With ``spec.profile_phases`` the tick loop wraps its
four phases (train / defense / eval / counterfactual) plus the one-off
prepare step in :class:`~repro.stream.profile.PhaseTimer`; the
resulting :class:`~repro.stream.profile.StreamProfile` rides
``StreamResult.phase_profile`` — never the serialized record, which
stays byte-identical profiled or not.

**Parallelism.**  One stream is inherently sequential (tick ``t+1``
trains on state tick ``t`` left behind), so the fan-out unit is the
*whole stream*: :func:`run_stream_experiment` ships it as a single
engine task.  Standalone that runs inline; under
``replicate_scenario(..., workers=N)`` every replica's stream becomes
one task in the shared :class:`~repro.engine.runner.WorkerPool`, so N
seeds play N streams truly concurrently
(``benchmarks/bench_stream_throughput.py`` measures the messages/sec
difference and asserts the records identical).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.attacks.variants import build_attack_variants
from repro.corpus.dataset import Dataset, LabeledMessage
from repro.corpus.trec import TrecStyleCorpus
from repro.engine.runner import ParallelRunner
from repro.engine.sweep import (
    evaluate_dataset,
    evaluation_workspace,
    train_grouped,
    unlearn_grouped,
)
from repro.errors import ExperimentError
from repro.experiments.attack_data import attack_messages_as_dataset
from repro.experiments.metrics import ConfusionCounts
from repro.experiments.results import CurvePoint, ExperimentRecord, Series
from repro.rng import SeedSpawner
from repro.spambayes.classifier import Classifier
from repro.spambayes.ndkernel import backend_columns, create_classifier
from repro.stream.defenses import build_tick_defense
from repro.stream.profile import PhaseTimer, StreamProfile
from repro.stream.spec import StreamSpec

if TYPE_CHECKING:
    from repro.attacks.base import Attack
    from repro.spambayes.ndkernel import ScoringWorkspace

__all__ = [
    "COUNTERFACTUAL_MODES",
    "StreamOutcome",
    "StreamResult",
    "StreamRunner",
    "run_stream_experiment",
]

COUNTERFACTUAL_MODES: tuple[str, ...] = ("twin", "unlearn")
"""How the clean counterfactual is computed: ``twin`` (the default —
an incrementally trained clean-twin classifier, O(tick) per tick) or
``unlearn`` (the retained snapshot/unlearn-all/restore reference,
O(history) per tick).  Bit-identical records either way."""


@dataclass
class StreamOutcome:
    """State of the world after one tick's retrain.

    The counter fields mirror the legacy ``WeeklyOutcome`` one for one
    (the delegation maps them across); ``clean_confusion`` and the
    fitted cutoffs are the stream engine's additions and stay ``None``
    unless the spec asks for them.
    """

    tick: int
    trained_messages: int
    attack_sent: int
    attack_trained: int
    attack_rejected: int
    legitimate_rejected: int
    confusion: ConfusionCounts
    clean_confusion: ConfusionCounts | None = None
    ham_cutoff: float | None = None
    spam_cutoff: float | None = None


@dataclass
class StreamResult:
    """Per-tick outcomes of one played stream."""

    spec: StreamSpec
    ticks: list[StreamOutcome] = field(default_factory=list)
    test_messages: int = 0
    """Held-out messages scored per tick (the evaluation workload)."""
    phase_profile: StreamProfile | None = None
    """Per-tick phase timings when ``spec.profile_phases`` asked for
    them; observation only — never serialized into the record."""

    def outcome(self, tick: int) -> StreamOutcome:
        for outcome in self.ticks:
            if outcome.tick == tick:
                return outcome
        raise ExperimentError(f"no tick {tick} in result")

    def final_ham_misclassification(self) -> float:
        return self.ticks[-1].confusion.ham_misclassified_rate

    def messages_processed(self) -> int:
        """Ingested arrivals plus held-out scoring work, stream-wide.

        The numerator of the throughput benchmark: every arrival the
        gate saw (trained or rejected) plus every held-out evaluation
        actually performed.  A clean-counterfactual re-score only
        counts from the first tick with attack mail trained — before
        that the runner copies the actual confusion instead of
        scoring (see :meth:`StreamRunner._clean_counterfactual`).
        """
        ingested = self.spec.total_arrivals()
        evaluations = 0
        attack_so_far = 0
        for outcome in self.ticks:
            evaluations += 1
            attack_so_far += outcome.attack_trained
            if outcome.clean_confusion is not None and attack_so_far > 0:
                evaluations += 1
        return ingested + evaluations * self.test_messages

    def to_record(self) -> ExperimentRecord:
        """Serialize through the shared results layer.

        One ``stream`` series with the tick number as x (plus a
        ``stream-clean`` counterfactual series when measured), so
        ``replicate_scenario`` pools per-tick error bars over seeds
        with zero stream-specific code.
        """
        spec = self.spec
        series = [
            Series(
                name="stream",
                points=[
                    CurvePoint.from_confusion(float(outcome.tick), outcome.confusion)
                    for outcome in self.ticks
                ],
            )
        ]
        if all(outcome.clean_confusion is not None for outcome in self.ticks):
            series.append(
                Series(
                    name="stream-clean",
                    points=[
                        CurvePoint.from_confusion(
                            float(outcome.tick), outcome.clean_confusion
                        )
                        for outcome in self.ticks
                    ],
                )
            )
        extras: dict = {
            "attack_sent": [outcome.attack_sent for outcome in self.ticks],
            "attack_trained": [outcome.attack_trained for outcome in self.ticks],
            "attack_rejected": [outcome.attack_rejected for outcome in self.ticks],
            "legitimate_rejected": [
                outcome.legitimate_rejected for outcome in self.ticks
            ],
            "trained_messages": [outcome.trained_messages for outcome in self.ticks],
        }
        if any(outcome.ham_cutoff is not None for outcome in self.ticks):
            extras["fitted_thresholds"] = [
                [outcome.tick, outcome.ham_cutoff, outcome.spam_cutoff]
                for outcome in self.ticks
                if outcome.ham_cutoff is not None
            ]
        config: dict = {
            "ticks": spec.ticks,
            "ham_per_tick": spec.ham_per_tick,
            "spam_per_tick": spec.spam_per_tick,
            "attack_variant": spec.attack_variant,
            "attack_start_tick": spec.attack_start_tick,
            "attack_per_tick": spec.attack_per_tick,
            "ramp": spec.ramp,
            "ramp_ticks": spec.ramp_ticks,
            "defense": spec.defense,
            "measure_clean": spec.measure_clean,
            "test_size": spec.test_size,
            "seed": spec.seed,
        }
        # The record must carry everything needed to re-run it
        # standalone, so the active defense's parameters ride along.
        # (workers and profile_phases are execution knobs, not
        # experiment identity — both are deliberately excluded.)
        if spec.defense == "threshold":
            config["threshold_quantile"] = spec.threshold_quantile
        elif spec.defense == "roni":
            config["roni_calibration_size"] = spec.roni_calibration_size
            config["roni"] = {
                "train_size": spec.roni.train_size,
                "validation_size": spec.roni.validation_size,
                "trials": spec.roni.trials,
                "spam_fraction": spec.roni.spam_fraction,
                "ham_as_ham_threshold": spec.roni.ham_as_ham_threshold,
            }
        return ExperimentRecord(
            experiment="stream",
            config=config,
            series=series,
            extras=extras,
        )


class StreamRunner:
    """Plays one :class:`StreamSpec` and collects per-tick outcomes.

    ``counterfactual`` selects how the optional clean measurement is
    computed (:data:`COUNTERFACTUAL_MODES`); every mode produces
    byte-identical records, which
    ``tests/test_stream_clean_twin.py`` enforces differentially.
    """

    def __init__(self, spec: StreamSpec, counterfactual: str = "twin") -> None:
        if counterfactual not in COUNTERFACTUAL_MODES:
            raise ExperimentError(
                f"unknown counterfactual mode {counterfactual!r}; "
                f"known: {', '.join(COUNTERFACTUAL_MODES)}"
            )
        self.spec = spec
        self.counterfactual = counterfactual

    # ------------------------------------------------------------------
    # Preparation
    # ------------------------------------------------------------------

    def _prepare(self):
        """Corpus, arrival streams, held-out test set and the attack.

        Sizing and slicing replicate the legacy loop exactly: the
        corpus is arrival demand plus ``test_size`` slack per class,
        and the test set is the *tail* ``test_size // 2`` of each
        class — mail the stream never trains on.
        """
        spec = self.spec
        spawner = SeedSpawner(spec.seed).spawn("retraining")
        needed_ham = spec.ticks * spec.ham_per_tick + spec.test_size
        needed_spam = spec.ticks * spec.spam_per_tick + spec.test_size
        corpus = TrecStyleCorpus.generate(
            n_ham=needed_ham,
            n_spam=needed_spam,
            profile=spec.profile,
            seed=spawner.child_seed("corpus"),
        )
        ham_stream = corpus.dataset.ham
        spam_stream = corpus.dataset.spam
        test = Dataset(
            ham_stream[-spec.test_size // 2 :] + spam_stream[-spec.test_size // 2 :],
            name="held-out",
        )
        test.tokenize_all()
        ham_stream = ham_stream[: -spec.test_size // 2]
        spam_stream = spam_stream[: -spec.test_size // 2]

        attack: "Attack | None" = None
        if any(spec.tick_attack_counts()):
            # The focused variant needs the victim's mail pool (to pick
            # a target outside it and steal headers); the dictionary
            # variants ignore it.  Building the attack draws nothing
            # from the spawner streams, so skipping it for attack-free
            # specs (the clean control) changes no downstream draw.
            pool = Dataset(ham_stream + spam_stream, name="stream-arrivals")
            attack = build_attack_variants(
                corpus, (spec.attack_variant,), seed=spec.seed, pool=pool
            )[spec.attack_variant]
        return spawner, ham_stream, spam_stream, test, attack, corpus.table

    # ------------------------------------------------------------------
    # The tick loop
    # ------------------------------------------------------------------

    def run(self) -> StreamResult:
        """Play every tick; return the per-tick outcome trail."""
        spec = self.spec
        timer = PhaseTimer(spec.profile_phases)
        run_start = time.perf_counter()
        with timer.phase("prepare"):
            spawner, ham_stream, spam_stream, test, attack, table = self._prepare()
            counts = spec.tick_attack_counts()

            if table is None:
                classifier = create_classifier(spec.options)
            else:
                # Backend-stored corpus: adopt the ingest table so every
                # stored token-ID row indexes the count columns
                # directly, and take backend columns for the stream's
                # root classifier (the one whose vocabulary grows with
                # the corpus).  Record-identical to the in-memory path:
                # records never depend on table layout.
                classifier = create_classifier(
                    spec.options, table=table, columns=backend_columns()
                )
            # Encode the held-out set once against the stream's table:
            # every tick's evaluation is then one bulk kernel pass over
            # cached ID arrays (the table is append-only, so the arrays
            # never go stale as training interns new vocabulary).  The
            # scoring workspace additionally carries the batch-shape
            # state (CSR encoding, rank gather, scratch buffers) across
            # ticks; it depends only on (rows, table), so the main
            # classifier and the clean twin share one.
            test.encode(classifier.table)
            workspace = evaluation_workspace(classifier, test)
            defense = build_tick_defense(spec, classifier.table)
            # The clean twin: same options, SAME table (append-only, so
            # sharing is free), trained below on exactly the accepted
            # non-attack arrivals.  Counts are additive integers, so at
            # every tick twin state == main state minus the trained
            # attack mail — the unlearn excursion's result, without the
            # excursion.
            twin: Classifier | None = None
            if spec.measure_clean and self.counterfactual == "twin":
                twin = create_classifier(spec.options, table=classifier.table)

        accepted_history: list[LabeledMessage] = []
        trained_history: list[LabeledMessage] = []
        trained_attack: list[LabeledMessage] = []
        result = StreamResult(spec=spec, test_messages=len(test))

        for tick in range(1, spec.ticks + 1):
            timer.start_tick()
            tick_rng = spawner.rng(f"week[{tick}]")
            with timer.phase("train"):
                start_ham = (tick - 1) * spec.ham_per_tick
                start_spam = (tick - 1) * spec.spam_per_tick
                arrivals: list[LabeledMessage] = list(
                    ham_stream[start_ham : start_ham + spec.ham_per_tick]
                ) + list(spam_stream[start_spam : start_spam + spec.spam_per_tick])
                attack_sent = counts[tick - 1]
                attack_arrivals: list[LabeledMessage] = []
                if attack_sent:
                    batch = attack.generate(attack_sent, tick_rng)
                    attack_arrivals = attack_messages_as_dataset(
                        batch, start=tick * 10_000
                    )

            with timer.phase("defense"):
                decision = defense.gate(
                    tick, arrivals, attack_arrivals, accepted_history, tick_rng
                )
            with timer.phase("train"):
                to_train = decision.to_train
                train_grouped(classifier, to_train)
                accepted_history.extend(decision.accepted_legitimate)
                trained_history.extend(to_train)
                trained_attack.extend(decision.trained_attack)
            if twin is not None:
                with timer.phase("counterfactual"):
                    # The twin ingests this tick's accepted legitimate
                    # mail and nothing else; the messages were encoded
                    # by the main retrain above, so this interns no new
                    # vocabulary and draws no randomness.
                    train_grouped(twin, decision.accepted_legitimate)

            with timer.phase("defense"):
                fit = defense.cutoffs(trained_history, tick_rng)
            cutoffs = None if fit is None else (fit.ham_cutoff, fit.spam_cutoff)
            with timer.phase("eval"):
                confusion = evaluate_dataset(
                    classifier, test, cutoffs=cutoffs, workspace=workspace
                )
            with timer.phase("counterfactual"):
                clean = self._clean_counterfactual(
                    classifier,
                    twin,
                    test,
                    workspace,
                    trained_attack,
                    cutoffs,
                    confusion,
                )
            result.ticks.append(
                StreamOutcome(
                    tick=tick,
                    trained_messages=classifier.nspam + classifier.nham,
                    attack_sent=attack_sent,
                    attack_trained=decision.attack_trained,
                    attack_rejected=decision.attack_rejected,
                    legitimate_rejected=decision.legitimate_rejected,
                    confusion=confusion,
                    clean_confusion=clean,
                    ham_cutoff=None if fit is None else fit.ham_cutoff,
                    spam_cutoff=None if fit is None else fit.spam_cutoff,
                )
            )
        result.phase_profile = timer.finish(time.perf_counter() - run_start)
        return result

    def _clean_counterfactual(
        self,
        classifier: Classifier,
        twin: Classifier | None,
        test: Dataset,
        workspace: "ScoringWorkspace",
        trained_attack: list[LabeledMessage],
        cutoffs: tuple[float, float] | None,
        confusion: ConfusionCounts,
    ) -> ConfusionCounts | None:
        """The tick's what-if-no-poison confusion.

        Default path: evaluate the clean twin — one bulk scoring pass,
        cost independent of how much attack mail the stream has
        trained.  Twin counts equal main-minus-attack counts exactly
        (integer count-addition), so the scores, and therefore the
        confusion, are bit-identical to the retained reference path:
        snapshot, unlearn every attack message trained so far, re-score
        the held-out set, restore (``counterfactual="unlearn"``) —
        which grows with the attack history and is kept only as the
        executable specification the differential suite replays.
        """
        if not self.spec.measure_clean:
            return None
        if not trained_attack:
            # Nothing poisoned yet: the counterfactual IS the
            # measurement (the twin would score identically — its
            # counts equal the main classifier's — so copying keeps
            # messages_processed()'s re-score accounting meaningful).
            return ConfusionCounts.from_dict(confusion.as_dict())
        if twin is not None:
            return evaluate_dataset(twin, test, cutoffs=cutoffs, workspace=workspace)
        snap = classifier.snapshot()
        try:
            unlearn_grouped(classifier, trained_attack)
            return evaluate_dataset(classifier, test, cutoffs=cutoffs)
        finally:
            classifier.restore(snap)


# ----------------------------------------------------------------------
# Engine integration
# ----------------------------------------------------------------------


def _run_stream_task(spec: StreamSpec, _task: int) -> StreamResult:
    """Engine worker: one whole stream is one task (stable pickle path).

    The fault-injection site fires before any stream state exists, so
    an injected crash or hang loses no partial work — the supervisor's
    retry replays the whole (deterministic) stream from its spec.
    """
    from repro.engine import faults

    faults.inject("stream-task", f"seed:{spec.seed}")
    return StreamRunner(spec).run()


def run_stream_experiment(spec: StreamSpec = StreamSpec()) -> StreamResult:
    """Run one stream through the engine — the ``stream`` protocol.

    A stream is a single task, so standalone execution is inline and
    sequential at any ``workers`` value; under an active shared
    :class:`~repro.engine.runner.WorkerPool` (a replication) the task
    ships to the pool, freeing the replica's parent thread — which is
    how ``repro replicate stream-* --workers N`` plays N seeds' streams
    concurrently.  Results are identical either way.
    """
    (result,) = ParallelRunner(spec.workers).map(_run_stream_task, spec, [0])
    return result
