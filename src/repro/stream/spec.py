"""The declarative mailstream specification.

A :class:`StreamSpec` describes a *time-ordered* deployment of the
Section 2.1 threat model as pure data: how many ticks (weeks) the
stream runs, how much legitimate ham/spam arrives per tick, when the
attacker starts mailing and on what ramp-up schedule, and which
per-tick defense screens arrivals before the periodic retrain.  Like
the experiment configs, a spec is a frozen dataclass with ``seed`` and
``workers`` fields, so it slots straight into the scenario registry
(``config_type=StreamSpec``) and the multi-seed replication engine.

Ramp-up schedules
-----------------

``attack_per_tick`` is the schedule's *peak* rate; ``ramp`` shapes how
the attacker approaches it from ``attack_start_tick``:

``constant``
    ``attack_per_tick`` messages every tick from the start tick on —
    the legacy weekly loop's shape.
``linear``
    Ramp from ``attack_per_tick / ramp_ticks`` up to the peak over
    ``ramp_ticks`` ticks, then hold — a cautious attacker growing the
    campaign under the defender's radar.
``burst``
    The whole budget at once: ``attack_per_tick * ramp_ticks``
    messages in the start tick, nothing before or after — the same
    total mail as ``constant`` over a ``ramp_ticks``-long campaign,
    compressed into one retraining period.

:meth:`StreamSpec.tick_attack_counts` materializes the schedule as one
count per tick; everything downstream (the runner, the benchmarks, the
tests) consumes that.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.corpus.vocabulary import VocabularyProfile, SMALL_PROFILE
from repro.defenses.roni import RoniConfig
from repro.errors import ExperimentError
from repro.spambayes.options import ClassifierOptions, DEFAULT_OPTIONS

if TYPE_CHECKING:  # only for the from_retraining signature
    from repro.experiments.retraining import RetrainingConfig

__all__ = ["RAMPS", "DEFENSES", "StreamSpec"]

RAMPS: tuple[str, ...] = ("constant", "linear", "burst")
"""The attack ramp-up schedules :class:`StreamSpec` understands."""

DEFENSES: tuple[str, ...] = ("none", "roni", "threshold")
"""The per-tick defenses :class:`StreamSpec` understands."""


@dataclass(frozen=True)
class StreamSpec:
    """Shape of one time-ordered attack scenario.

    Defaults are the legacy weekly retraining loop's (8 ticks of 60+60
    legitimate messages, a constant 12-message/tick usenet dictionary
    attack from tick 4, undefended) so ``StreamSpec()`` is the
    familiar Section 2.1 deployment.
    """

    ticks: int = 8
    ham_per_tick: int = 60
    spam_per_tick: int = 60
    attack_start_tick: int = 4
    attack_per_tick: int = 12
    """Peak attack messages per tick (see ``ramp``)."""
    attack_variant: str = "usenet"
    ramp: str = "constant"
    ramp_ticks: int = 1
    """Ramp length for ``linear``; campaign length compressed into the
    burst for ``burst``; ignored by ``constant``."""
    defense: str = "none"
    """"none", "roni" (gate recalibrated on accepted mail) or
    "threshold" (per-tick refitted cutoffs)."""
    roni: RoniConfig = RoniConfig()
    roni_calibration_size: int = 120
    threshold_quantile: float = 0.10
    measure_clean: bool = False
    """Also record, per tick, the counterfactual confusion with every
    trained attack message unlearned (via the snapshot/restore WAL)."""
    test_size: int = 200
    profile: VocabularyProfile = SMALL_PROFILE
    seed: int = 0
    options: ClassifierOptions = DEFAULT_OPTIONS
    workers: int = 1
    """Worker processes; a lone stream is inherently sequential, but
    under ``replicate_scenario`` each replica's whole stream runs as
    one task in the shared worker pool (results identical at any
    value)."""
    profile_phases: bool = False
    """Collect per-tick phase timings (train / defense / eval /
    counterfactual) into ``StreamResult.phase_profile``.  Pure
    observation: timings never enter the serialized record (like
    ``workers``, they are excluded from ``to_record()``), so profiled
    and unprofiled runs stay byte-identical.  ``repro run-scenario
    <stream-*> --profile`` sets this."""

    def __post_init__(self) -> None:
        if self.ticks < 1:
            raise ExperimentError("need at least one tick")
        if self.ham_per_tick < 0 or self.spam_per_tick < 0:
            raise ExperimentError("per-tick arrival counts must be >= 0")
        if self.attack_start_tick < 1:
            raise ExperimentError("attack_start_tick must be >= 1")
        if self.attack_per_tick < 0:
            raise ExperimentError("attack_per_tick must be >= 0")
        if self.ramp not in RAMPS:
            raise ExperimentError(
                f"unknown ramp {self.ramp!r}; known: {', '.join(RAMPS)}"
            )
        if self.ramp_ticks < 1:
            raise ExperimentError("ramp_ticks must be >= 1")
        if self.defense not in DEFENSES:
            raise ExperimentError(
                f"unknown defense {self.defense!r}; known: {', '.join(DEFENSES)}"
            )
        if self.test_size < 2:
            raise ExperimentError("test_size must be >= 2 (half ham, half spam)")
        if self.defense == "roni":
            needed = self.roni.train_size + self.roni.validation_size
            if self.roni_calibration_size < needed:
                raise ExperimentError(
                    f"roni_calibration_size={self.roni_calibration_size} cannot "
                    f"seat a {self.roni.train_size}+{self.roni.validation_size} "
                    "RONI resample"
                )
        if self.defense == "threshold" and (
            self.ham_per_tick == 0 or self.spam_per_tick == 0
        ):
            raise ExperimentError(
                "threshold defense needs both ham and spam arriving every tick"
            )

    # ------------------------------------------------------------------
    # The arrival schedule
    # ------------------------------------------------------------------

    def attack_count_at(self, tick: int) -> int:
        """Attack messages arriving at ``tick`` (1-based) under the ramp."""
        if tick < self.attack_start_tick or self.attack_per_tick == 0:
            return 0
        if self.ramp == "constant":
            return self.attack_per_tick
        if self.ramp == "linear":
            progress = min(1.0, (tick - self.attack_start_tick + 1) / self.ramp_ticks)
            return round(self.attack_per_tick * progress)
        # burst: the whole campaign budget lands in the start tick.
        return self.attack_per_tick * self.ramp_ticks if tick == self.attack_start_tick else 0

    def tick_attack_counts(self) -> tuple[int, ...]:
        """The materialized schedule: one attack count per tick, 1-based."""
        return tuple(self.attack_count_at(tick) for tick in range(1, self.ticks + 1))

    def total_attack_messages(self) -> int:
        return sum(self.tick_attack_counts())

    def total_arrivals(self) -> int:
        """Every message the stream ingests (ham + spam + attack)."""
        return (
            self.ticks * (self.ham_per_tick + self.spam_per_tick)
            + self.total_attack_messages()
        )

    # ------------------------------------------------------------------
    # Legacy bridge
    # ------------------------------------------------------------------

    @classmethod
    def from_retraining(cls, config: "RetrainingConfig") -> "StreamSpec":
        """The stream spec equivalent to a legacy :class:`RetrainingConfig`.

        A constant-ramp, clean-measurement-free spec whose runner
        replays the legacy weekly loop draw for draw — the delegation
        path of
        :func:`repro.experiments.retraining.run_retraining_simulation`
        and the subject of ``tests/test_stream_vs_retraining.py``.
        """
        return cls(
            ticks=config.weeks,
            ham_per_tick=config.ham_per_week,
            spam_per_tick=config.spam_per_week,
            attack_start_tick=config.attack_start_week,
            attack_per_tick=config.attack_per_week,
            attack_variant=config.attack_variant,
            ramp="constant",
            defense=config.defense,
            roni=config.roni,
            roni_calibration_size=config.roni_calibration_size,
            test_size=config.test_size,
            profile=config.profile,
            seed=config.seed,
            options=config.options,
        )
