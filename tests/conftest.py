"""Shared fixtures.

Corpus generation is deterministic, so the expensive fixtures are
session-scoped: every test that asks for ``small_corpus`` sees the
exact same object, and mutating tests must copy what they touch.

``REPRO_WORKERS`` (same knob as ``benchmarks/conftest.py``) sets the
worker count the experiment-running tests pass to their configs, so CI
can run the identical suite once sequentially and once through the
process fan-out.  Results are bit-identical at any value — that is the
engine's contract — so the assertions never change, only which code
path proves them.
"""

from __future__ import annotations

import os

import pytest

from repro.corpus.trec import TrecStyleCorpus
from repro.corpus.vocabulary import TINY_PROFILE, SMALL_PROFILE, Vocabulary
from repro.rng import SeedSpawner
from repro.spambayes.classifier import Classifier
from repro.spambayes.filter import SpamFilter

SUITE_WORKERS = int(os.environ.get("REPRO_WORKERS", "1") or "1")
"""Worker processes for experiment-running tests (env REPRO_WORKERS)."""


@pytest.fixture(scope="session")
def suite_workers() -> int:
    """The REPRO_WORKERS-resolved worker count for experiment configs."""
    return SUITE_WORKERS


@pytest.fixture(scope="session")
def tiny_vocabulary() -> Vocabulary:
    """A few hundred words; enough structure for unit tests."""
    return Vocabulary.build(TINY_PROFILE, seed=42)


@pytest.fixture(scope="session")
def tiny_corpus() -> TrecStyleCorpus:
    """120 ham / 120 spam over the tiny vocabulary."""
    return TrecStyleCorpus.generate(n_ham=120, n_spam=120, profile=TINY_PROFILE, seed=42)


@pytest.fixture(scope="session")
def small_corpus() -> TrecStyleCorpus:
    """500 ham / 500 spam over the 1/10-paper-scale vocabulary.

    Used by integration tests that need realistic dictionary overlap
    and Zipf tails.  Read-only: never train *into* its messages.
    """
    return TrecStyleCorpus.generate(n_ham=500, n_spam=500, profile=SMALL_PROFILE, seed=7)


@pytest.fixture(scope="session")
def trained_small_filter(small_corpus) -> SpamFilter:
    """A filter trained on a 400-message inbox of ``small_corpus``.

    Session-scoped and therefore read-only; tests that need to mutate
    training state must take a ``.copy()``.
    """
    rng = SeedSpawner(99).rng("trained-filter-inbox")
    inbox = small_corpus.dataset.sample_inbox(400, 0.5, rng)
    spam_filter = SpamFilter()
    for message in inbox:
        spam_filter.classifier.learn(message.tokens(), message.is_spam)
    return spam_filter


@pytest.fixture()
def empty_classifier() -> Classifier:
    return Classifier()
