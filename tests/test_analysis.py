"""Tests for the analysis layer: token shifts (Figure 4) and plots."""

from __future__ import annotations

import pytest

from repro.analysis.plots import ascii_bar_chart, ascii_line_chart, ascii_scatter
from repro.analysis.token_shift import token_shift_analysis
from repro.attacks.focused import FocusedAttack
from repro.rng import SeedSpawner
from repro.spambayes.classifier import Classifier
from repro.spambayes.filter import Label


class TestTokenShift:
    @pytest.fixture(scope="class")
    def setup(self, small_corpus):
        rng = SeedSpawner(71).rng("inbox")
        inbox = small_corpus.dataset.sample_inbox(400, 0.5, rng)
        classifier = Classifier()
        for message in inbox:
            classifier.learn(message.tokens(), message.is_spam)
        inbox_ids = {m.msgid for m in inbox}
        target = next(m for m in small_corpus.dataset.ham if m.msgid not in inbox_ids)
        attack = FocusedAttack(
            target.email,
            guess_probability=0.5,
            header_pool=[m.email for m in inbox.spam[:50]],
        )
        batch = attack.generate(30, SeedSpawner(72).rng("a"))
        return classifier, target, batch

    def test_included_tokens_rise(self, setup):
        classifier, target, batch = setup
        report = token_shift_analysis(classifier, target.email, batch)
        assert report.included_shifts
        assert report.mean_delta(included=True) > 0.2

    def test_excluded_tokens_dip_slightly(self, setup):
        classifier, target, batch = setup
        report = token_shift_analysis(classifier, target.email, batch)
        assert report.excluded_shifts
        assert -0.2 < report.mean_delta(included=False) <= 0.05

    def test_message_score_rises(self, setup):
        classifier, target, batch = setup
        report = token_shift_analysis(classifier, target.email, batch)
        assert report.score_after > report.score_before
        assert report.label_before is Label.HAM

    def test_classifier_state_restored(self, setup):
        classifier, target, batch = setup
        before = (classifier.nspam, classifier.nham, classifier.vocabulary_size)
        score_before = classifier.score(target.tokens())
        token_shift_analysis(classifier, target.email, batch)
        assert (classifier.nspam, classifier.nham, classifier.vocabulary_size) == before
        assert classifier.score(target.tokens()) == score_before

    def test_histograms_count_all_tokens(self, setup):
        classifier, target, batch = setup
        report = token_shift_analysis(classifier, target.email, batch)
        assert sum(report.histogram(after=False)) == len(report.shifts)
        assert sum(report.histogram(after=True)) == len(report.shifts)

    def test_render_contains_panel_elements(self, setup):
        classifier, target, batch = setup
        report = token_shift_analysis(classifier, target.email, batch)
        text = report.render()
        assert "token score before attack" in text
        assert "score hist before" in text
        assert target.msgid in text


class TestAsciiLineChart:
    def test_renders_series_and_legend(self):
        chart = ascii_line_chart(
            {"up": [(0, 0.0), (5, 0.5), (10, 1.0)], "flat": [(0, 0.2), (10, 0.2)]},
            title="test chart",
        )
        assert "test chart" in chart
        assert "o=up" in chart
        assert "*=flat" in chart

    def test_empty_series(self):
        assert ascii_line_chart({}) == "(no data)"

    def test_auto_y_range(self):
        chart = ascii_line_chart({"a": [(0, 5.0), (1, 10.0)]}, y_range=None)
        assert "10" in chart

    def test_y_range_rendered(self):
        chart = ascii_line_chart({"a": [(0, 0.5)]})
        assert "1.00" in chart
        assert "0.00" in chart


class TestAsciiBarChart:
    def test_renders_groups(self):
        chart = ascii_bar_chart(
            {"p=0.1": {"ham": 0.8, "unsure": 0.1, "spam": 0.1}},
            title="bars",
        )
        assert "bars" in chart
        assert "p=0.1" in chart
        assert "ham=80%" in chart

    def test_empty(self):
        assert ascii_bar_chart({}) == "(no data)"


class TestAsciiScatter:
    def test_markers_present(self):
        chart = ascii_scatter(
            [(0.1, 0.9, True), (0.8, 0.7, False)], title="scatter"
        )
        assert "scatter" in chart
        assert "x" in chart
        assert "o" in chart

    def test_empty_points_render_axes(self):
        chart = ascii_scatter([])
        assert "0.00" in chart
        assert "1.00" in chart
