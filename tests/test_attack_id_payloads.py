"""Differential tests: ID-native attack payloads vs the string path.

PR 3 made attack payloads ID-native end to end —
:meth:`AttackBatch.encode` interns each payload once and the engine,
the focused cells and the RONI gate consume the encoded arrays
directly.  The string-payload path (``learn_repeated`` over
``AttackMessageGroup.training_tokens``) is retained, and these tests
hold the two side by side across **every attack class** and at
workers ∈ {1, 2}: identical training counts, identical scores,
identical sweep confusions, identical RONI measurements.
"""

from __future__ import annotations

import pickle
import random

import pytest

from repro.attacks.dictionary import (
    AspellDictionaryAttack,
    OptimalDictionaryAttack,
    UsenetDictionaryAttack,
)
from repro.attacks.focused import FocusedAttack
from repro.attacks.hamlabeled import HamLabeledAttack
from repro.attacks.knowledge import EmpiricalHamDistribution, budgeted_attack
from repro.corpus.trec import TrecStyleCorpus
from repro.corpus.vocabulary import TINY_PROFILE
from repro.defenses.roni import RoniDefense
from repro.engine.sweep import (
    IncrementalAttackTrainer,
    _StringPayloadTrainer,
    sequential_reference_sweep,
)
from repro.experiments.crossval import attack_fraction_sweep, train_grouped
from repro.spambayes.classifier import Classifier
from repro.spambayes.token_table import TokenTable

WORKER_COUNTS = (1, 2)


@pytest.fixture(scope="module")
def corpus():
    return TrecStyleCorpus.generate(n_ham=140, n_spam=140, profile=TINY_PROFILE, seed=13)


@pytest.fixture(scope="module")
def inbox(corpus):
    inbox = corpus.dataset.sample_inbox(160, 0.5, random.Random(4))
    inbox.tokenize_all()
    return inbox


def _all_attacks(corpus, inbox):
    """One instance of every attack class (name -> attack)."""
    target = next(m for m in corpus.dataset.ham if m not in inbox.messages)
    return {
        "optimal": OptimalDictionaryAttack.from_vocabulary(corpus.vocabulary),
        "usenet": UsenetDictionaryAttack.from_vocabulary(corpus.vocabulary, seed=1),
        "aspell": AspellDictionaryAttack.from_vocabulary(corpus.vocabulary),
        "focused": FocusedAttack(
            target.email,
            guess_probability=0.5,
            header_pool=[m.email for m in inbox.spam],
        ),
        "informed": budgeted_attack(
            EmpiricalHamDistribution(m.email for m in corpus.dataset.ham[:60]),
            budget=120,
        ),
        "ham-labeled": HamLabeledAttack.from_vocabulary(corpus.vocabulary),
    }


def _attack_params():
    return ["optimal", "usenet", "aspell", "focused", "informed", "ham-labeled"]


def _state(classifier: Classifier):
    return (
        classifier.nspam,
        classifier.nham,
        {
            token: (info.spamcount, info.hamcount)
            for token in classifier.iter_vocabulary()
            for info in (classifier.word_info(token),)
        },
    )


@pytest.mark.parametrize("name", _attack_params())
class TestTrainingEquivalence:
    """String-trained and ID-trained classifiers are indistinguishable."""

    def _batch(self, corpus, inbox, name, count=8):
        attack = _all_attacks(corpus, inbox)[name]
        return attack.generate(count, random.Random(99))

    def test_train_into_ids_matches_train_into(self, corpus, inbox, name):
        batch = self._batch(corpus, inbox, name)
        via_strings = Classifier()
        train_grouped(via_strings, inbox)
        via_ids = Classifier()
        train_grouped(via_ids, inbox)

        batch.train_into(via_strings)
        batch.train_into_ids(via_ids)
        assert _state(via_ids) == _state(via_strings)

        # Scores over real mail are float-identical, not just counts.
        probes = [m.tokens() for m in corpus.dataset.messages[:30]]
        assert via_ids.score_many(probes) == via_strings.score_many(probes)

    def test_untrain_from_ids_is_exact_inverse(self, corpus, inbox, name):
        batch = self._batch(corpus, inbox, name)
        classifier = Classifier()
        train_grouped(classifier, inbox)
        before = _state(classifier)
        batch.train_into_ids(classifier)
        batch.untrain_from_ids(classifier)
        assert _state(classifier) == before

    def test_incremental_trainer_matches_string_trainer(self, corpus, inbox, name):
        batch = self._batch(corpus, inbox, name, count=10)
        via_strings = Classifier()
        train_grouped(via_strings, inbox)
        via_ids = Classifier()
        train_grouped(via_ids, inbox)

        string_trainer = _StringPayloadTrainer(via_strings, batch)
        id_trainer = IncrementalAttackTrainer(via_ids, batch)
        for target in (0, 3, 7, 10):
            string_trainer.advance_to(target)
            id_trainer.advance_to(target)
            assert _state(via_ids) == _state(via_strings)

    def test_roni_measure_batch_matches_measure_tokens(self, corpus, inbox, name):
        batch = self._batch(corpus, inbox, name, count=3)
        table = inbox.encode()
        defense = RoniDefense(inbox, random.Random(5), table=table)
        is_spam = batch.trained_as_spam
        reference = [
            defense.measure_tokens(group.training_tokens, is_spam=is_spam)
            for group in batch.groups
        ]
        assert defense.measure_batch(batch) == reference


class TestEncodeCache:
    def test_encode_caches_per_table(self, corpus, inbox):
        batch = _all_attacks(corpus, inbox)["focused"].generate(5, random.Random(1))
        table = TokenTable()
        first = batch.encode(table)
        assert batch.encode(table) is first  # cached
        other = TokenTable()
        assert batch.encode(other) is not first  # new table re-encodes
        decoded = {
            frozenset(other.decode(ids)) for ids, _ in batch.encode(other)
        }
        assert decoded == {group.training_tokens for group in batch.groups}

    def test_encode_counts_and_order_follow_groups(self, corpus, inbox):
        batch = _all_attacks(corpus, inbox)["usenet"].generate(7, random.Random(1))
        table = TokenTable()
        encoded = batch.encode(table)
        assert [count for _, count in encoded] == [g.count for g in batch.groups]
        for ids, _ in encoded:
            assert list(ids) == sorted(set(ids))  # sorted, duplicate-free

    def test_pickle_drops_the_cache(self, corpus, inbox):
        batch = _all_attacks(corpus, inbox)["optimal"].generate(4, random.Random(1))
        table = TokenTable()
        batch.encode(table)
        clone = pickle.loads(pickle.dumps(batch))
        assert clone._encoded is None and clone._encoded_table is None
        fresh = TokenTable()
        assert [
            (frozenset(fresh.decode(ids)), count) for ids, count in clone.encode(fresh)
        ] == [(g.training_tokens, g.count) for g in batch.groups]


class TestSweepEquivalenceAcrossWorkers:
    """Full sweeps: string-payload reference == ID engine at workers 1, 2."""

    FRACTIONS = (0.0, 0.02, 0.05)

    @pytest.mark.parametrize("name", ["usenet", "focused"])
    def test_engine_matches_string_reference(self, corpus, inbox, name):
        attack = _all_attacks(corpus, inbox)[name]
        reference = sequential_reference_sweep(
            inbox, attack, self.FRACTIONS, 3, random.Random(21)
        )
        signatures = {}
        for workers in WORKER_COUNTS:
            points = attack_fraction_sweep(
                inbox, attack, self.FRACTIONS, 3, random.Random(21), workers=workers
            )
            signatures[workers] = [
                (p.attack_fraction, p.attack_message_count, p.confusion.as_dict())
                for p in points
            ]
        expected = [
            (p.attack_fraction, p.attack_message_count, p.confusion.as_dict())
            for p in reference
        ]
        for workers in WORKER_COUNTS:
            assert signatures[workers] == expected
