"""Tests for attack taxonomy, payload rendering and AttackBatch."""

from __future__ import annotations

import pytest

from repro.attacks.base import AttackBatch, AttackMessageGroup
from repro.attacks.payload import HeaderPolicy, choose_header_source, render_attack_email
from repro.attacks.taxonomy import (
    AttackTaxonomy,
    Influence,
    SecurityViolation,
    Specificity,
)
from repro.errors import AttackError
from repro.rng import SeedSpawner
from repro.spambayes.classifier import Classifier
from repro.spambayes.message import Email


class TestTaxonomy:
    def test_dictionary_coordinates(self):
        taxonomy = AttackTaxonomy.dictionary()
        assert taxonomy.influence is Influence.CAUSATIVE
        assert taxonomy.violation is SecurityViolation.AVAILABILITY
        assert taxonomy.specificity is Specificity.INDISCRIMINATE

    def test_focused_coordinates(self):
        taxonomy = AttackTaxonomy.focused()
        assert taxonomy.specificity is Specificity.TARGETED

    def test_describe(self):
        text = AttackTaxonomy.dictionary().describe()
        assert "Causative" in text
        assert "Availability" in text
        assert "Indiscriminate" in text


class TestPayloadRendering:
    def test_empty_header_policy(self):
        email = render_attack_email(["alpha", "beta"], msgid="a-1")
        assert email.headers == []
        assert email.msgid == "a-1"
        assert "alpha" in email.body and "beta" in email.body

    def test_header_source_copied_verbatim(self):
        source = Email(body="ignored", headers=[("From", "x@y.z"), ("Subject", "s")])
        email = render_attack_email(["word"], msgid="a-2", header_source=source)
        assert email.headers == source.headers
        assert email.body == "word"

    def test_body_wrapped(self):
        email = render_attack_email([f"word{i:04d}" for i in range(200)], msgid="a-3")
        assert all(len(line) <= 80 for line in email.body.split("\n"))

    def test_choose_header_source_empty_pool_rejected(self):
        with pytest.raises(AttackError):
            choose_header_source([], SeedSpawner(1).rng("x"))

    def test_choose_header_source_picks_from_pool(self):
        pool = [Email(body="", msgid=f"s{i}") for i in range(5)]
        picked = choose_header_source(pool, SeedSpawner(1).rng("x"))
        assert picked in pool


class TestAttackMessageGroup:
    def test_invalid_count_rejected(self):
        with pytest.raises(AttackError):
            AttackMessageGroup(tokens=frozenset({"a"}), count=0)

    def test_training_tokens_merge_headers(self):
        group = AttackMessageGroup(
            tokens=frozenset({"a"}),
            count=1,
            header_tokens=frozenset({"subject:x"}),
        )
        assert group.training_tokens == {"a", "subject:x"}

    def test_training_tokens_without_headers_is_same_object(self):
        tokens = frozenset({"a", "b"})
        group = AttackMessageGroup(tokens=tokens, count=2)
        assert group.training_tokens is tokens


class TestAttackBatch:
    def _batch(self) -> AttackBatch:
        return AttackBatch(
            "test",
            [
                AttackMessageGroup(tokens=frozenset({"a", "b"}), count=3),
                AttackMessageGroup(
                    tokens=frozenset({"a", "c"}),
                    count=2,
                    header_tokens=frozenset({"subject:x"}),
                ),
            ],
        )

    def test_message_count(self):
        assert self._batch().message_count == 5
        assert len(self._batch()) == 5

    def test_distinct_tokens_union_of_payloads(self):
        assert self._batch().distinct_tokens == {"a", "b", "c"}

    def test_token_occurrences(self):
        # 3 messages x 2 tokens + 2 messages x 3 tokens (payload+header)
        assert self._batch().token_occurrences() == 3 * 2 + 2 * 3

    def test_train_untrain_roundtrip(self):
        classifier = Classifier()
        classifier.learn({"base"}, False)
        batch = self._batch()
        batch.train_into(classifier)
        assert classifier.nspam == 5
        assert classifier.word_info("a").spamcount == 5
        assert classifier.word_info("subject:x").spamcount == 2
        batch.untrain_from(classifier)
        assert classifier.nspam == 0
        assert classifier.word_info("a") is None

    def test_iter_emails_counts_and_ids(self):
        emails = list(self._batch().iter_emails())
        assert len(emails) == 5
        assert emails[0].msgid == "attack-test-000000"
        assert emails[4].msgid == "attack-test-000004"

    def test_iter_emails_header_source(self):
        source = Email(body="", headers=[("From", "spam@x.biz")])
        batch = AttackBatch(
            "h", [AttackMessageGroup(tokens=frozenset({"a"}), count=1, header_source=source)]
        )
        email = next(batch.iter_emails())
        assert email.get_header("From") == "spam@x.biz"


class TestZeroCountGeneration:
    """The ``generate(0, rng)`` contract: an empty batch, never a
    zero-count :class:`AttackMessageGroup` (which count>=1 forbids).

    A sweep whose fractions include 0.0 — the clean-baseline point
    every figure carries — computes an attack count of zero, so every
    attack class must survive it.
    """

    def _attacks(self):
        from repro.attacks.dictionary import DictionaryAttack
        from repro.attacks.focused import FocusedAttack
        from repro.attacks.hamlabeled import HamLabeledAttack

        target = Email(body="quarterly review agenda", msgid="target-1")
        header_source = Email(body="", headers=[("From", "spam@x.biz")])
        return [
            DictionaryAttack({"a", "b"}, name="dict"),
            HamLabeledAttack({"a", "b"}),
            FocusedAttack(target, guess_probability=0.5),
            FocusedAttack(target, guess_probability=0.5, header_pool=[header_source]),
        ]

    def test_generate_zero_yields_empty_batch(self):
        rng = SeedSpawner(5).rng("zero-count")
        for attack in self._attacks():
            batch = attack.generate(0, rng)
            assert batch.message_count == 0
            assert batch.groups == []
            assert list(batch.iter_emails()) == []
            # Training an empty batch is a no-op, both payload paths.
            classifier = Classifier()
            classifier.learn({"base"}, False)
            batch.train_into(classifier)
            batch.train_into_ids(classifier)
            assert classifier.nspam == 0

    def test_negative_count_rejected(self):
        rng = SeedSpawner(5).rng("negative-count")
        for attack in self._attacks():
            with pytest.raises(AttackError):
                attack.generate(-1, rng)

    def test_advance_to_zero_is_noop_even_on_empty_batch(self):
        from repro.engine.sweep import IncrementalAttackTrainer
        from repro.attacks.dictionary import DictionaryAttack

        rng = SeedSpawner(5).rng("advance-zero")
        classifier = Classifier()
        classifier.learn({"base"}, False)
        empty = DictionaryAttack({"a", "b"}, name="dict").generate(0, rng)
        trainer = IncrementalAttackTrainer(classifier, empty)
        trainer.advance_to(0)  # must not raise "batch exhausted"
        assert trainer.trained == 0
        assert classifier.nspam == 0
        with pytest.raises(Exception):
            trainer.advance_to(1)  # exhaustion still detected past zero

    def test_zero_fraction_sweep_point_equals_unattacked_evaluation(self):
        import random

        from repro.corpus.trec import TrecStyleCorpus
        from repro.corpus.vocabulary import TINY_PROFILE
        from repro.engine.sweep import SweepSpec, run_attack_sweeps
        from repro.attacks.variants import build_attack_variants

        corpus = TrecStyleCorpus.generate(
            n_ham=120, n_spam=120, profile=TINY_PROFILE, seed=42
        )
        inbox = corpus.dataset.sample_inbox(100, 0.5, random.Random(1))
        inbox.tokenize_all()
        attack = build_attack_variants(corpus, ("usenet",), seed=1)["usenet"]

        def sweep(fractions):
            return run_attack_sweeps(
                inbox,
                [(SweepSpec("u", attack, fractions), random.Random(2))],
                folds=2,
            )[0]

        attacked = sweep((0.0, 0.1))
        baseline_only = sweep((0.0,))
        assert attacked.points[0].attack_message_count == 0
        # The 0.0 point is the unattacked evaluation, bit for bit —
        # identical to a sweep that never generates a non-empty batch.
        assert (
            attacked.points[0].confusion.as_dict()
            == baseline_only.points[0].confusion.as_dict()
        )
        # And the attacked point actually differs (the sweep did work).
        assert (
            attacked.points[1].confusion.as_dict()
            != attacked.points[0].confusion.as_dict()
        )
