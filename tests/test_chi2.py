"""Unit and property tests for the chi-square machinery."""

from __future__ import annotations

import math

import pytest
import scipy.stats
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.spambayes.chi2 import chi2q, fisher_combine, ln_product


class TestChi2Q:
    def test_matches_scipy_survival_function(self):
        for x2 in (0.1, 1.0, 5.0, 10.0, 50.0, 200.0):
            for dof in (2, 4, 10, 100, 300):
                expected = scipy.stats.chi2.sf(x2, dof)
                assert chi2q(x2, dof) == pytest.approx(expected, rel=1e-10, abs=1e-12)

    def test_zero_statistic_has_full_mass_above(self):
        assert chi2q(0.0, 2) == 1.0
        assert chi2q(-3.0, 8) == 1.0

    def test_huge_statistic_underflows_to_zero(self):
        assert chi2q(1e9, 2) == 0.0

    def test_result_clamped_to_one(self):
        # Large dof with small x2: the series sums to ~1 and must not
        # exceed it through rounding.
        assert chi2q(1e-9, 1000) <= 1.0

    def test_odd_degrees_rejected(self):
        with pytest.raises(ConfigurationError):
            chi2q(1.0, 3)

    def test_nonpositive_degrees_rejected(self):
        with pytest.raises(ConfigurationError):
            chi2q(1.0, 0)
        with pytest.raises(ConfigurationError):
            chi2q(1.0, -2)

    @given(
        x2=st.floats(min_value=0.0, max_value=500.0),
        half_dof=st.integers(min_value=1, max_value=200),
    )
    @settings(max_examples=60)
    def test_is_probability(self, x2: float, half_dof: int):
        value = chi2q(x2, 2 * half_dof)
        assert 0.0 <= value <= 1.0

    @given(
        half_dof=st.integers(min_value=1, max_value=50),
        x2=st.floats(min_value=0.01, max_value=200.0),
        step=st.floats(min_value=0.01, max_value=50.0),
    )
    @settings(max_examples=60)
    def test_monotone_decreasing_in_statistic(self, half_dof: int, x2: float, step: float):
        assert chi2q(x2 + step, 2 * half_dof) <= chi2q(x2, 2 * half_dof) + 1e-12


class TestLnProduct:
    def test_matches_sum_of_logs(self):
        values = [0.3, 0.7, 0.0001, 0.99]
        assert ln_product(values) == pytest.approx(sum(math.log(v) for v in values))

    def test_survives_underflow(self):
        # 400 factors of 1e-5 underflow a double (1e-2000) but not the
        # frexp accumulator.
        values = [1e-5] * 400
        assert ln_product(values) == pytest.approx(400 * math.log(1e-5), rel=1e-12)

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            ln_product([0.5, 0.0])

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            ln_product([-0.1])

    def test_empty_is_zero(self):
        assert ln_product([]) == 0.0

    @given(st.lists(st.floats(min_value=1e-10, max_value=1.0), min_size=1, max_size=200))
    @settings(max_examples=50)
    def test_agrees_with_naive_sum(self, values: list[float]):
        assert ln_product(values) == pytest.approx(
            sum(math.log(v) for v in values), rel=1e-9, abs=1e-9
        )


class TestFisherCombine:
    def test_empty_scores_carry_no_evidence(self):
        assert fisher_combine([]) == 1.0

    def test_all_high_scores_give_high_combined(self):
        assert fisher_combine([0.99] * 20) > 0.99

    def test_all_low_scores_give_low_combined(self):
        assert fisher_combine([0.01] * 20) < 0.01

    def test_neutral_scores_stay_middling(self):
        value = fisher_combine([0.5] * 10)
        assert 0.05 < value < 0.95

    @given(st.lists(st.floats(min_value=1e-6, max_value=1.0), min_size=1, max_size=150))
    @settings(max_examples=50)
    def test_is_probability(self, scores: list[float]):
        assert 0.0 <= fisher_combine(scores) <= 1.0

    @given(
        scores=st.lists(st.floats(min_value=0.05, max_value=0.95), min_size=1, max_size=50),
        index=st.integers(min_value=0, max_value=49),
        bump=st.floats(min_value=0.001, max_value=0.04),
    )
    @settings(max_examples=50)
    def test_monotone_in_each_score(self, scores: list[float], index: int, bump: float):
        """Raising any single token score cannot lower the combined
        statistic — the monotonicity the Section 3.4 optimal-attack
        argument rests on."""
        index %= len(scores)
        bumped = list(scores)
        bumped[index] = min(1.0, bumped[index] + bump)
        assert fisher_combine(bumped) >= fisher_combine(scores) - 1e-12
