"""Tests for the Robinson/Fisher classifier (Equations 1-4)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TrainingError
from repro.spambayes.classifier import Classifier
from repro.spambayes.options import ClassifierOptions


def train_basic(classifier: Classifier) -> None:
    """10 spam with 'cash', 10 ham with 'meeting', both with 'shared'."""
    for _ in range(10):
        classifier.learn({"cash", "shared"}, is_spam=True)
        classifier.learn({"meeting", "shared"}, is_spam=False)


class TestEquations:
    def test_raw_score_equation_1(self, empty_classifier):
        # NS=3, NH=2; token in 2 spam, 1 ham:
        # PS = NH*NS(w) / (NH*NS(w) + NS*NH(w)) = 2*2 / (2*2 + 3*1) = 4/7
        c = empty_classifier
        c.learn({"w"}, True)
        c.learn({"w"}, True)
        c.learn({"x"}, True)
        c.learn({"w"}, False)
        c.learn({"y"}, False)
        assert c.raw_spam_score("w") == pytest.approx(4 / 7)

    def test_smoothed_score_equation_2(self, empty_classifier):
        # One spam message containing w: PS(w)=1, N(w)=1, s=0.45, x=0.5
        # f(w) = (0.45*0.5 + 1*1.0) / (0.45 + 1) = 1.225/1.45
        c = empty_classifier
        c.learn({"w"}, True)
        c.learn({"other"}, False)
        assert c.spam_prob("w") == pytest.approx((0.45 * 0.5 + 1.0) / 1.45)

    def test_unknown_token_scores_prior(self, empty_classifier):
        train_basic(empty_classifier)
        assert empty_classifier.spam_prob("never-seen") == 0.5

    def test_balanced_token_scores_near_half(self, empty_classifier):
        train_basic(empty_classifier)
        assert empty_classifier.spam_prob("shared") == pytest.approx(0.5, abs=0.01)

    def test_class_size_normalization(self, empty_classifier):
        # Token in 1 of 1 spam and 2 of 10 ham: spam ratio 1.0 vs ham
        # ratio 0.2 -> PS = 1/(1+0.2) ~ 0.833 despite more ham copies.
        c = empty_classifier
        c.learn({"w"}, True)
        for i in range(10):
            c.learn({"w"} if i < 2 else {"z"}, False)
        assert c.raw_spam_score("w") == pytest.approx(1.0 / 1.2)

    def test_empty_message_scores_half(self, empty_classifier):
        train_basic(empty_classifier)
        assert empty_classifier.score([]) == 0.5

    def test_spammy_message_scores_high(self, empty_classifier):
        train_basic(empty_classifier)
        assert empty_classifier.score({"cash"}) > 0.9

    def test_hammy_message_scores_low(self, empty_classifier):
        train_basic(empty_classifier)
        assert empty_classifier.score({"meeting"}) < 0.1

    def test_score_bounds(self, empty_classifier):
        train_basic(empty_classifier)
        for tokens in ({"cash"}, {"meeting"}, {"cash", "meeting"}, {"nothing"}):
            assert 0.0 <= empty_classifier.score(tokens) <= 1.0


class TestDeltaSelection:
    def test_weak_tokens_excluded(self, empty_classifier):
        train_basic(empty_classifier)
        significant = empty_classifier.significant_tokens({"shared", "cash"})
        tokens = [ts.token for ts in significant]
        assert "cash" in tokens
        assert "shared" not in tokens  # |0.5 - 0.5| < 0.1

    def test_cap_at_max_discriminators(self):
        options = ClassifierOptions(max_discriminators=5)
        c = Classifier(options)
        spam_tokens = {f"s{i}" for i in range(20)}
        for _ in range(5):
            c.learn(spam_tokens, True)
            c.learn({"h"}, False)
        significant = c.significant_tokens(spam_tokens)
        assert len(significant) == 5

    def test_strongest_kept_deterministic_ties(self, empty_classifier):
        options = ClassifierOptions(max_discriminators=2)
        c = Classifier(options)
        for _ in range(5):
            c.learn({"aaa", "bbb", "ccc"}, True)
            c.learn({"hhh"}, False)
        picked = [ts.token for ts in c.significant_tokens({"aaa", "bbb", "ccc"})]
        # Equal strength: ties broken alphabetically.
        assert picked == ["aaa", "bbb"]

    def test_duplicates_collapse(self, empty_classifier):
        train_basic(empty_classifier)
        once = empty_classifier.score(["cash"])
        many = empty_classifier.score(["cash"] * 50)
        assert once == many


class TestLearnUnlearn:
    def test_learn_increments_counts(self, empty_classifier):
        empty_classifier.learn({"a", "b"}, True)
        assert empty_classifier.nspam == 1
        assert empty_classifier.word_info("a").spamcount == 1

    def test_unlearn_restores_exact_state(self, empty_classifier):
        c = empty_classifier
        train_basic(c)
        before_vocab = {t: (c.word_info(t).spamcount, c.word_info(t).hamcount)
                        for t in c.iter_vocabulary()}
        before = (c.nspam, c.nham, before_vocab)
        c.learn({"cash", "new-token"}, True)
        c.unlearn({"cash", "new-token"}, True)
        after_vocab = {t: (c.word_info(t).spamcount, c.word_info(t).hamcount)
                       for t in c.iter_vocabulary()}
        assert (c.nspam, c.nham, after_vocab) == before

    def test_unlearn_unknown_message_rejected(self, empty_classifier):
        empty_classifier.learn({"a"}, True)
        with pytest.raises(TrainingError):
            empty_classifier.unlearn({"b"}, True)

    def test_unlearn_wrong_label_rejected(self, empty_classifier):
        empty_classifier.learn({"a"}, True)
        with pytest.raises(TrainingError):
            empty_classifier.unlearn({"a"}, False)

    def test_failed_unlearn_leaves_state_untouched(self, empty_classifier):
        c = empty_classifier
        c.learn({"a", "b"}, True)
        with pytest.raises(TrainingError):
            c.unlearn({"a", "zzz"}, True)
        assert c.nspam == 1
        assert c.word_info("a").spamcount == 1

    def test_unlearn_with_no_messages_rejected(self, empty_classifier):
        with pytest.raises(TrainingError):
            empty_classifier.unlearn({"a"}, True)

    def test_pruning_empty_records(self, empty_classifier):
        c = empty_classifier
        c.learn({"a"}, True)
        c.unlearn({"a"}, True)
        assert c.word_info("a") is None
        assert c.vocabulary_size == 0


class TestLearnRepeated:
    def test_equivalent_to_loop(self):
        a, b = Classifier(), Classifier()
        tokens = {"x", "y", "z"}
        for _ in range(7):
            a.learn(tokens, True)
        b.learn_repeated(tokens, True, 7)
        assert a.nspam == b.nspam
        for token in tokens:
            assert a.word_info(token).spamcount == b.word_info(token).spamcount

    def test_zero_count_is_noop(self, empty_classifier):
        empty_classifier.learn_repeated({"x"}, True, 0)
        assert empty_classifier.nspam == 0
        assert empty_classifier.vocabulary_size == 0

    def test_negative_count_rejected(self, empty_classifier):
        with pytest.raises(TrainingError):
            empty_classifier.learn_repeated({"x"}, True, -1)

    def test_unlearn_repeated_roundtrip(self, empty_classifier):
        c = empty_classifier
        train_basic(c)
        c.learn_repeated({"cash", "w"}, True, 5)
        c.unlearn_repeated({"cash", "w"}, True, 5)
        assert c.nspam == 10
        assert c.word_info("w") is None
        assert c.word_info("cash").spamcount == 10

    def test_unlearn_repeated_overdraw_rejected(self, empty_classifier):
        empty_classifier.learn_repeated({"x"}, True, 3)
        with pytest.raises(TrainingError):
            empty_classifier.unlearn_repeated({"x"}, True, 4)


class TestCopy:
    def test_copy_is_independent(self, empty_classifier):
        train_basic(empty_classifier)
        clone = empty_classifier.copy()
        clone.learn({"cash"}, True)
        assert clone.nspam == empty_classifier.nspam + 1
        assert (
            clone.word_info("cash").spamcount
            == empty_classifier.word_info("cash").spamcount + 1
        )

    def test_copy_scores_match(self, empty_classifier):
        train_basic(empty_classifier)
        clone = empty_classifier.copy()
        assert clone.score({"cash", "meeting"}) == empty_classifier.score(
            {"cash", "meeting"}
        )


# ----------------------------------------------------------------------
# Property-based invariants
# ----------------------------------------------------------------------

tokens_strategy = st.sets(st.sampled_from([f"t{i}" for i in range(30)]), min_size=1, max_size=10)


@given(
    messages=st.lists(
        st.tuples(tokens_strategy, st.booleans()), min_size=1, max_size=30
    ),
    query=tokens_strategy,
)
@settings(max_examples=50, deadline=None)
def test_score_always_in_unit_interval(messages, query):
    classifier = Classifier()
    for tokens, is_spam in messages:
        classifier.learn(tokens, is_spam)
    assert 0.0 <= classifier.score(query) <= 1.0


@given(
    base=st.lists(st.tuples(tokens_strategy, st.booleans()), min_size=1, max_size=20),
    extra=st.lists(st.tuples(tokens_strategy, st.booleans()), min_size=1, max_size=10),
)
@settings(max_examples=40, deadline=None)
def test_learn_unlearn_roundtrip_property(base, extra):
    """Learning then unlearning any batch restores exact counts."""
    classifier = Classifier()
    for tokens, is_spam in base:
        classifier.learn(tokens, is_spam)
    snapshot = {
        token: (classifier.word_info(token).spamcount, classifier.word_info(token).hamcount)
        for token in classifier.iter_vocabulary()
    }
    counts = (classifier.nspam, classifier.nham)
    for tokens, is_spam in extra:
        classifier.learn(tokens, is_spam)
    for tokens, is_spam in reversed(extra):
        classifier.unlearn(tokens, is_spam)
    assert (classifier.nspam, classifier.nham) == counts
    restored = {
        token: (classifier.word_info(token).spamcount, classifier.word_info(token).hamcount)
        for token in classifier.iter_vocabulary()
    }
    assert restored == snapshot


@given(
    spam_trainings=st.integers(min_value=1, max_value=20),
    query_extra=st.sets(st.sampled_from(["s0", "s1", "s2", "s3"]), max_size=4),
)
@settings(max_examples=40, deadline=None)
def test_adding_spammy_tokens_never_lowers_score(spam_trainings, query_extra):
    """Monotonicity (Section 3.4): a superset of spam-scored tokens
    scores at least as high."""
    classifier = Classifier()
    spam_tokens = {"s0", "s1", "s2", "s3"}
    for _ in range(spam_trainings):
        classifier.learn(spam_tokens, True)
        classifier.learn({"h0", "h1"}, False)
    base_query = {"h0"}
    base = classifier.score(base_query)
    extended = classifier.score(base_query | query_extra)
    assert extended >= base - 1e-9
