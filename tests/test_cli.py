"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import ARTIFACTS, build_parser, main


class TestParser:
    def test_requires_artifact(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_artifact(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure9"])

    def test_defaults(self):
        args = build_parser().parse_args(["table1"])
        assert args.scale == "small"
        assert args.seed == 0
        assert args.workers == 1
        assert args.out is None

    def test_all_artifacts_registered(self):
        assert set(ARTIFACTS) == {"table1", "figure1", "figure2", "figure3", "roni", "figure5"}


class TestExecution:
    def test_table1_prints(self, capsys):
        assert main(["table1"]) == 0
        output = capsys.readouterr().out
        assert "=== table1" in output
        assert "Dictionary Attack" in output
        assert "10,000" in output

    def test_out_writes_text_and_json(self, tmp_path, capsys):
        # figure3 with tiny scale would still be slow; table1 writes txt
        # only (no record). Use table1 for the txt path and verify the
        # record path shape with a monkeypatched fast artifact.
        assert main(["table1", "--out", str(tmp_path)]) == 0
        assert (tmp_path / "table1.txt").exists()
        assert not (tmp_path / "table1.json").exists()

    def test_duplicate_artifacts_run_once(self, capsys):
        assert main(["table1", "table1"]) == 0
        output = capsys.readouterr().out
        assert output.count("=== table1") == 1

    def test_fast_experiment_roundtrip(self, tmp_path, capsys, monkeypatch):
        """Run a real (but tiny) figure3 through the CLI and check the
        JSON record parses."""
        from repro.experiments.focused_exp import FocusedExperimentConfig
        import repro.cli as cli

        def tiny_config(scale, seed, workers=1):
            return FocusedExperimentConfig(
                inbox_size=200,
                n_targets=3,
                repetitions=1,
                attack_count=12,
                corpus_ham=250,
                corpus_spam=250,
                size_sweep_fractions=(0.0, 0.05),
                seed=seed,
            )

        monkeypatch.setattr(cli, "_focused_config", tiny_config)
        assert main(["figure3", "--out", str(tmp_path)]) == 0
        record = json.loads((tmp_path / "figure3.json").read_text())
        assert record["experiment"] == "figure3-focused-size"
        assert record["series"][0]["points"]
        output = capsys.readouterr().out
        assert "Figure 3" in output
