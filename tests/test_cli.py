"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import ARTIFACTS, build_parser, main

FAST_SCENARIO_ARGS = [
    "--set", "ticks=2",
    "--set", "ham_per_tick=15",
    "--set", "spam_per_tick=15",
    "--set", "test_size=30",
]
"""Overrides that make `stream-clean-control` run in well under a second."""


class TestParser:
    def test_requires_artifact(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_artifact(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure9"])

    def test_defaults(self):
        args = build_parser().parse_args(["table1"])
        assert args.scale == "small"
        assert args.seed == 0
        assert args.workers == 1
        assert args.out is None

    def test_all_artifacts_registered(self):
        assert set(ARTIFACTS) == {"table1", "figure1", "figure2", "figure3", "roni", "figure5"}


class TestExecution:
    def test_table1_prints(self, capsys):
        assert main(["table1"]) == 0
        output = capsys.readouterr().out
        assert "=== table1" in output
        assert "Dictionary Attack" in output
        assert "10,000" in output

    def test_out_writes_text_and_json(self, tmp_path, capsys):
        # figure3 with tiny scale would still be slow; table1 writes txt
        # only (no record). Use table1 for the txt path and verify the
        # record path shape with a monkeypatched fast artifact.
        assert main(["table1", "--out", str(tmp_path)]) == 0
        assert (tmp_path / "table1.txt").exists()
        assert not (tmp_path / "table1.json").exists()

    def test_duplicate_artifacts_run_once(self, capsys):
        assert main(["table1", "table1"]) == 0
        output = capsys.readouterr().out
        assert output.count("=== table1") == 1

    def test_fast_experiment_roundtrip(self, tmp_path, capsys, monkeypatch):
        """Run a real (but tiny) figure3 through the CLI and check the
        JSON record parses."""
        from repro.experiments.focused_exp import FocusedExperimentConfig
        import repro.cli as cli

        def tiny_config(scale, seed, workers=1):
            return FocusedExperimentConfig(
                inbox_size=200,
                n_targets=3,
                repetitions=1,
                attack_count=12,
                corpus_ham=250,
                corpus_spam=250,
                size_sweep_fractions=(0.0, 0.05),
                seed=seed,
            )

        monkeypatch.setattr(cli, "_focused_config", tiny_config)
        assert main(["figure3", "--out", str(tmp_path)]) == 0
        record = json.loads((tmp_path / "figure3.json").read_text())
        assert record["experiment"] == "figure3-focused-size"
        assert record["series"][0]["points"]
        output = capsys.readouterr().out
        assert "Figure 3" in output


class TestScenarioErrorPaths:
    """Every user-input mistake on the scenario commands must produce
    one clean ``error: ...`` diagnostic (a ReproError-derived message)
    and a nonzero exit — never a traceback, never an argparse dump."""

    def _error_of(self, capsys, argv: list[str]) -> str:
        assert main(argv) == 2
        captured = capsys.readouterr()
        assert captured.err.startswith("error: ")
        assert "Traceback" not in captured.err
        return captured.err

    def test_unknown_scenario_name(self, capsys):
        err = self._error_of(capsys, ["run-scenario", "no-such-scenario"])
        assert "unknown scenario" in err
        assert "stream-clean-control" in err  # the catalogue is listed

    def test_set_without_equals(self, capsys):
        err = self._error_of(
            capsys, ["run-scenario", "stream-clean-control", "--set", "ticks"]
        )
        assert "--set needs key=value" in err

    def test_set_unknown_field(self, capsys):
        err = self._error_of(
            capsys, ["run-scenario", "stream-clean-control", "--set", "bogus=3"]
        )
        assert "unknown override field" in err
        assert "ticks" in err  # accepted fields are listed

    def test_set_uncoercible_value(self, capsys):
        err = self._error_of(
            capsys, ["run-scenario", "stream-clean-control", "--set", "ticks=banana"]
        )
        assert "invalid config value" in err

    def test_profile_on_non_stream_scenario(self, capsys):
        err = self._error_of(
            capsys, ["run-scenario", "dictionary-vs-none", "--profile"]
        )
        assert "--profile" in err
        assert "profile_phases" in err

    def test_replicate_zero_seeds(self, capsys):
        err = self._error_of(
            capsys, ["replicate", "stream-clean-control", "--seeds", "0"]
        )
        assert "--seeds must be >= 1" in err

    def test_replicate_reserved_override(self, capsys):
        err = self._error_of(
            capsys, ["replicate", "stream-clean-control", "--set", "seed=3"]
        )
        assert "conflicts with replication" in err

    def test_run_scenario_unwritable_out(self, capsys, tmp_path):
        blocker = tmp_path / "a-file"
        blocker.write_text("not a directory")
        err = self._error_of(
            capsys,
            ["run-scenario", "stream-clean-control", *FAST_SCENARIO_ARGS,
             "--out", str(blocker / "sub")],
        )
        assert "cannot write --out" in err

    def test_replicate_unwritable_out(self, capsys, tmp_path):
        blocker = tmp_path / "a-file"
        blocker.write_text("not a directory")
        err = self._error_of(
            capsys,
            ["replicate", "stream-clean-control", "--seeds", "2",
             *FAST_SCENARIO_ARGS, "--out", str(blocker / "sub" / "r.json")],
        )
        assert "cannot write --out" in err

    def test_replicate_malformed_set_is_clean_too(self, capsys):
        err = self._error_of(
            capsys, ["replicate", "stream-clean-control", "--set", "novalue"]
        )
        assert "--set needs key=value" in err


class TestScenarioHappyPaths:
    def test_run_scenario_writes_text_and_record(self, capsys, tmp_path):
        out = tmp_path / "artifacts"
        assert main(
            ["run-scenario", "stream-clean-control", *FAST_SCENARIO_ARGS,
             "--out", str(out)]
        ) == 0
        assert (out / "stream-clean-control.txt").exists()
        record = json.loads((out / "stream-clean-control.json").read_text())
        assert record["experiment"] == "stream"
        output = capsys.readouterr().out
        assert "held-out ham misclassification" in output

    def test_run_scenario_profile_prints_phase_table(self, capsys):
        assert main(
            ["run-scenario", "stream-clean-control", *FAST_SCENARIO_ARGS,
             "--profile"]
        ) == 0
        output = capsys.readouterr().out
        assert "phase timings (ms per tick)" in output
        assert "counterfactual" in output
        assert "accounted" in output

    def test_profile_does_not_change_the_record(self, capsys, tmp_path):
        plain_out = tmp_path / "plain"
        profiled_out = tmp_path / "profiled"
        assert main(
            ["run-scenario", "stream-clean-control", *FAST_SCENARIO_ARGS,
             "--out", str(plain_out)]
        ) == 0
        assert main(
            ["run-scenario", "stream-clean-control", *FAST_SCENARIO_ARGS,
             "--profile", "--out", str(profiled_out)]
        ) == 0
        plain = (plain_out / "stream-clean-control.json").read_bytes()
        profiled = (profiled_out / "stream-clean-control.json").read_bytes()
        assert plain == profiled

    def test_replicate_writes_pooled_record(self, capsys, tmp_path):
        out = tmp_path / "r.json"
        assert main(
            ["replicate", "stream-clean-control", "--seeds", "2",
             *FAST_SCENARIO_ARGS, "--out", str(out)]
        ) == 0
        record = json.loads(out.read_text())
        assert record["config"]["scenario"] == "stream-clean-control"
        assert len(record["replicas"]) == 2


class TestFaultToleranceSurface:
    """The supervision flags, the gc-shm janitor, and the error
    envelope around engine failures."""

    def test_supervision_flags_registered(self):
        from repro.cli import build_replicate_parser, build_run_scenario_parser

        for build in (build_run_scenario_parser, build_replicate_parser):
            args = build().parse_args(["stream-clean-control"])
            assert args.timeout is None
            assert args.retries is None
        args = build_replicate_parser().parse_args(
            ["stream-clean-control", "--timeout", "2.5", "--retries", "3"]
        )
        assert args.timeout == 2.5
        assert args.retries == 3
        assert args.resume is None

    def test_gc_shm_runs_clean(self, capsys):
        assert main(["gc-shm"]) == 0
        assert "reclaimed" in capsys.readouterr().out

    def test_engine_failure_exits_with_one_line_error(self, monkeypatch, capsys):
        # Workers crash on every chunk; retries 0, degradation off: the
        # run must die with a clean `error:` line and status 2 — never
        # a traceback.  (replicate, not run-scenario: a single stream
        # is one task, which runs inline where faults never fire.)
        monkeypatch.setenv("REPRO_FAULTS", "crash:p=1")
        monkeypatch.setenv("REPRO_DEGRADE", "0")
        code = main(
            [
                "replicate",
                "stream-clean-control",
                "--seeds", "2",
                "--workers", "2",
                "--retries", "0",
                *FAST_SCENARIO_ARGS,
            ]
        )
        captured = capsys.readouterr()
        assert code == 2
        error_lines = [
            line for line in captured.err.splitlines() if line.strip()
        ]
        assert len(error_lines) == 1
        assert error_lines[0].startswith("error: ")
        assert "Traceback" not in captured.err

    def test_supervision_flags_recover_injected_crashes(self, monkeypatch, capsys):
        # Same fault schedule, but with the degradation ladder on: the
        # scenario completes and renders normally.
        monkeypatch.setenv("REPRO_FAULTS", "crash:p=1")
        monkeypatch.delenv("REPRO_DEGRADE", raising=False)
        code = main(
            [
                "replicate",
                "stream-clean-control",
                "--seeds", "2",
                "--workers", "2",
                "--retries", "1",
                *FAST_SCENARIO_ARGS,
            ]
        )
        captured = capsys.readouterr()
        assert code == 0, captured.err
        assert "=== replicate stream-clean-control" in captured.out

    def test_bad_timeout_rejected_cleanly(self, capsys):
        code = main(
            ["run-scenario", "stream-clean-control", "--timeout", "-1"]
        )
        captured = capsys.readouterr()
        assert code == 2
        assert captured.err.startswith("error: ")
