"""Tests for the cross-validated attack sweep machinery.

The key correctness property: the *incremental* contamination path
must produce bit-identical classifier state to training from scratch
at each fraction.
"""

from __future__ import annotations

import pytest

from repro.attacks.dictionary import DictionaryAttack
from repro.corpus.dataset import Dataset, LabeledMessage
from repro.errors import ExperimentError
from repro.experiments.crossval import (
    _IncrementalAttackTrainer,
    attack_fraction_sweep,
    attack_message_count,
    evaluate_dataset,
    train_grouped,
)
from repro.rng import SeedSpawner
from repro.spambayes.classifier import Classifier
from repro.spambayes.message import Email


def toy_dataset(n: int = 40) -> Dataset:
    messages = []
    for i in range(n // 2):
        messages.append(
            LabeledMessage(Email.build(body=f"meeting notes item{i}", msgid=f"h{i}"), False)
        )
        messages.append(
            LabeledMessage(Email.build(body=f"cheap offer deal{i}", msgid=f"s{i}"), True)
        )
    return Dataset(messages)


class TestAttackMessageCount:
    def test_paper_accounting(self):
        """1% of a 10,000-message training set = 101 attack messages."""
        assert attack_message_count(10_000, 0.01) == 101

    def test_zero_fraction(self):
        assert attack_message_count(1000, 0.0) == 0

    def test_ten_percent(self):
        assert attack_message_count(10_000, 0.10) == 1111

    def test_invalid_fraction(self):
        with pytest.raises(ExperimentError):
            attack_message_count(100, 1.0)
        with pytest.raises(ExperimentError):
            attack_message_count(100, -0.5)


class TestTrainGrouped:
    def test_equivalent_to_individual_learning(self):
        dataset = toy_dataset()
        grouped, individual = Classifier(), Classifier()
        train_grouped(grouped, dataset)
        for message in dataset:
            individual.learn(message.tokens(), message.is_spam)
        assert grouped.nspam == individual.nspam
        assert grouped.nham == individual.nham
        assert grouped.vocabulary_size == individual.vocabulary_size
        for token in individual.iter_vocabulary():
            assert grouped.word_info(token) == individual.word_info(token)

    def test_collapses_identical_messages(self):
        tokens = frozenset({"same", "tokens"})
        messages = []
        for i in range(10):
            message = LabeledMessage(Email(body="", msgid=str(i)), True)
            message._tokens = tokens
            messages.append(message)
        classifier = Classifier()
        train_grouped(classifier, Dataset(messages))
        assert classifier.nspam == 10
        assert classifier.word_info("same").spamcount == 10


class TestEvaluateDataset:
    def test_counts_sum_to_dataset(self):
        dataset = toy_dataset()
        classifier = Classifier()
        train_grouped(classifier, dataset)
        counts = evaluate_dataset(classifier, dataset)
        assert counts.total == len(dataset)

    def test_ham_only(self):
        dataset = toy_dataset()
        classifier = Classifier()
        train_grouped(classifier, dataset)
        counts = evaluate_dataset(classifier, dataset, ham_only=True)
        assert counts.spam_total == 0
        assert counts.ham_total == len(dataset.ham)

    def test_cutoff_override(self):
        dataset = toy_dataset()
        classifier = Classifier()
        train_grouped(classifier, dataset)
        strict = evaluate_dataset(classifier, dataset, cutoffs=(0.0, 1.0))
        # With θ0=0, only messages scoring exactly 0 can be ham.
        assert strict.ham_as_ham <= evaluate_dataset(classifier, dataset).ham_as_ham


class TestIncrementalTrainer:
    def test_matches_from_scratch_training(self):
        """Incremental contamination == retraining from scratch."""
        dataset = toy_dataset()
        attack = DictionaryAttack([f"atk{i}" for i in range(50)], name="t")
        rng = SeedSpawner(1).rng("x")
        batch = attack.generate(20, rng)

        incremental = Classifier()
        train_grouped(incremental, dataset)
        trainer = _IncrementalAttackTrainer(incremental, batch)
        for target in (0, 5, 12, 20):
            trainer.advance_to(target)
            scratch = Classifier()
            train_grouped(scratch, dataset)
            scratch.learn_repeated(attack.tokens, True, target)
            assert incremental.nspam == scratch.nspam
            probe = {"atk0", "meeting", "cheap"}
            assert incremental.score(probe) == scratch.score(probe)

    def test_rejects_descending_targets(self):
        classifier = Classifier()
        batch = DictionaryAttack(["a"]).generate(5, SeedSpawner(1).rng("x"))
        trainer = _IncrementalAttackTrainer(classifier, batch)
        trainer.advance_to(3)
        with pytest.raises(ExperimentError):
            trainer.advance_to(2)

    def test_rejects_overdraw(self):
        classifier = Classifier()
        batch = DictionaryAttack(["a"]).generate(5, SeedSpawner(1).rng("x"))
        trainer = _IncrementalAttackTrainer(classifier, batch)
        with pytest.raises(ExperimentError):
            trainer.advance_to(6)


class TestSweep:
    def test_sweep_shapes(self):
        dataset = toy_dataset(60)
        attack = DictionaryAttack({f"meeting", "notes"} | {f"w{i}" for i in range(20)})
        points = attack_fraction_sweep(
            dataset, attack, (0.0, 0.05, 0.10), folds=3, rng=SeedSpawner(2).rng("s")
        )
        assert [p.attack_fraction for p in points] == [0.0, 0.05, 0.10]
        assert points[0].attack_message_count == 0
        # Every fold contributes every test message once.
        assert points[0].confusion.total == len(dataset)

    def test_contamination_hurts_ham(self):
        dataset = toy_dataset(60)
        # Attack includes the ham vocabulary -> ham rates must rise.
        attack = DictionaryAttack(
            {"meeting", "notes"} | {f"item{i}" for i in range(30)}
        )
        points = attack_fraction_sweep(
            dataset, attack, (0.0, 0.2), folds=3, rng=SeedSpawner(3).rng("s")
        )
        assert (
            points[1].confusion.ham_misclassified_rate
            > points[0].confusion.ham_misclassified_rate
        )

    def test_unsorted_fractions_rejected(self):
        dataset = toy_dataset()
        attack = DictionaryAttack(["a"])
        with pytest.raises(ExperimentError):
            attack_fraction_sweep(
                dataset, attack, (0.1, 0.05), folds=2, rng=SeedSpawner(1).rng("s")
            )

    def test_empty_fractions_rejected(self):
        with pytest.raises(ExperimentError):
            attack_fraction_sweep(
                toy_dataset(), DictionaryAttack(["a"]), (), folds=2,
                rng=SeedSpawner(1).rng("s"),
            )
