"""Tests for Dataset operations: sampling, folds, token caching."""

from __future__ import annotations

import pytest

from repro.errors import CorpusError
from repro.rng import SeedSpawner
from repro.corpus.dataset import Dataset, LabeledMessage
from repro.spambayes.message import Email


def make_dataset(n_ham: int, n_spam: int) -> Dataset:
    messages = [
        LabeledMessage(Email.build(body=f"ham words {i}", msgid=f"h{i}"), False)
        for i in range(n_ham)
    ]
    messages += [
        LabeledMessage(Email.build(body=f"spam words {i}", msgid=f"s{i}"), True)
        for i in range(n_spam)
    ]
    return Dataset(messages, name="test")


class TestBasics:
    def test_counts(self):
        dataset = make_dataset(3, 5)
        assert dataset.counts() == (3, 5)
        assert len(dataset) == 8
        assert dataset.spam_fraction == pytest.approx(5 / 8)

    def test_ham_spam_views(self):
        dataset = make_dataset(2, 3)
        assert all(not m.is_spam for m in dataset.ham)
        assert all(m.is_spam for m in dataset.spam)

    def test_empty_dataset(self):
        dataset = Dataset([])
        assert dataset.spam_fraction == 0.0
        assert dataset.counts() == (0, 0)

    def test_subset_shares_objects(self):
        dataset = make_dataset(4, 0)
        view = dataset.subset([0, 2])
        assert view[0] is dataset[0]
        assert view[1] is dataset[2]

    def test_filtered(self):
        dataset = make_dataset(4, 4)
        only_spam = dataset.filtered(lambda m: m.is_spam)
        assert only_spam.counts() == (0, 4)


class TestInboxSampling:
    def test_prevalence_respected(self):
        dataset = make_dataset(100, 100)
        inbox = dataset.sample_inbox(50, 0.6, SeedSpawner(1).rng("i"))
        assert len(inbox) == 50
        assert inbox.counts() == (20, 30)

    def test_without_replacement(self):
        dataset = make_dataset(30, 30)
        inbox = dataset.sample_inbox(40, 0.5, SeedSpawner(1).rng("i"))
        assert len({m.msgid for m in inbox}) == 40

    def test_insufficient_ham_rejected(self):
        dataset = make_dataset(5, 100)
        with pytest.raises(CorpusError):
            dataset.sample_inbox(50, 0.5, SeedSpawner(1).rng("i"))

    def test_insufficient_spam_rejected(self):
        dataset = make_dataset(100, 5)
        with pytest.raises(CorpusError):
            dataset.sample_inbox(50, 0.5, SeedSpawner(1).rng("i"))

    def test_invalid_fraction_rejected(self):
        with pytest.raises(CorpusError):
            make_dataset(5, 5).sample_inbox(4, 1.5, SeedSpawner(1).rng("i"))

    def test_deterministic_given_rng(self):
        dataset = make_dataset(50, 50)
        a = dataset.sample_inbox(20, 0.5, SeedSpawner(2).rng("x"))
        b = dataset.sample_inbox(20, 0.5, SeedSpawner(2).rng("x"))
        assert [m.msgid for m in a] == [m.msgid for m in b]


class TestSplitAndFolds:
    def test_split_partitions(self):
        dataset = make_dataset(10, 10)
        first, second = dataset.split(0.5, SeedSpawner(1).rng("s"))
        assert len(first) == 10 and len(second) == 10
        ids = {m.msgid for m in first} | {m.msgid for m in second}
        assert len(ids) == 20

    def test_split_invalid_fraction(self):
        with pytest.raises(CorpusError):
            make_dataset(4, 4).split(0.0, SeedSpawner(1).rng("s"))

    def test_k_folds_cover_everything_once(self):
        dataset = make_dataset(13, 12)
        seen_test_ids: list[str] = []
        for train, test in dataset.k_folds(5, SeedSpawner(1).rng("f")):
            train_ids = {m.msgid for m in train}
            test_ids = {m.msgid for m in test}
            assert not (train_ids & test_ids)
            assert len(train_ids) + len(test_ids) == 25
            seen_test_ids.extend(test_ids)
        assert len(seen_test_ids) == 25
        assert len(set(seen_test_ids)) == 25

    def test_k_folds_validation(self):
        with pytest.raises(CorpusError):
            list(make_dataset(3, 3).k_folds(1, SeedSpawner(1).rng("f")))
        with pytest.raises(CorpusError):
            list(make_dataset(2, 1).k_folds(10, SeedSpawner(1).rng("f")))

    def test_shuffled_preserves_membership(self):
        dataset = make_dataset(5, 5)
        shuffled = dataset.shuffled(SeedSpawner(3).rng("sh"))
        assert {m.msgid for m in shuffled} == {m.msgid for m in dataset}


class TestTokenCaching:
    def test_tokens_cached_once(self):
        message = LabeledMessage(Email.build(body="some words here"), False)
        first = message.tokens()
        assert message.tokens() is first

    def test_invalidate_recomputes(self):
        message = LabeledMessage(Email.build(body="some words here"), False)
        first = message.tokens()
        message.invalidate_tokens()
        second = message.tokens()
        assert second == first
        assert second is not first

    def test_tokenize_all_warms_cache(self):
        dataset = make_dataset(3, 3)
        dataset.tokenize_all()
        for message in dataset:
            assert message._tokens is not None

    def test_vocabulary_unions_tokens(self):
        dataset = make_dataset(2, 2)
        vocab = dataset.vocabulary()
        assert "ham" in vocab
        assert "spam" in vocab
