"""Tests for the end-to-end defended training pipelines."""

from __future__ import annotations

import pytest

from repro.attacks.dictionary import UsenetDictionaryAttack
from repro.defenses.pipeline import train_with_dynamic_threshold, train_with_roni
from repro.experiments.threshold_exp import attack_messages_as_dataset
from repro.rng import SeedSpawner


@pytest.fixture(scope="module")
def pool(small_corpus):
    return small_corpus.dataset.sample_inbox(200, 0.5, SeedSpawner(41).rng("pool"))


class TestTrainWithRoni:
    def test_attack_messages_rejected_normal_accepted(self, small_corpus, pool):
        attack = UsenetDictionaryAttack.from_vocabulary(small_corpus.vocabulary)
        batch = attack.generate(3, SeedSpawner(42).rng("a"))
        attack_messages = attack_messages_as_dataset(batch)
        pool_ids = {m.msgid for m in pool}
        incoming_normal = [
            m for m in small_corpus.dataset if m.msgid not in pool_ids
        ][:10]
        incoming = attack_messages + incoming_normal
        spam_filter, report = train_with_roni(
            pool, incoming, SeedSpawner(43).rng("roni")
        )
        rejected_ids = {m.msgid for m in report.rejected}
        assert {m.msgid for m in attack_messages} <= rejected_ids
        assert not (rejected_ids & {m.msgid for m in incoming_normal})
        assert report.rejection_rate == pytest.approx(3 / 13)
        # The filter trained on pool + accepted only.
        expected = len(pool) + len(report.accepted)
        assert spam_filter.classifier.nspam + spam_filter.classifier.nham == expected

    def test_verdicts_recorded_per_message(self, small_corpus, pool):
        pool_ids = {m.msgid for m in pool}
        incoming = [m for m in small_corpus.dataset if m.msgid not in pool_ids][:5]
        _, report = train_with_roni(pool, incoming, SeedSpawner(44).rng("roni"))
        assert set(report.verdicts) == {m.msgid for m in incoming}

    def test_empty_incoming(self, pool):
        spam_filter, report = train_with_roni(pool, [], SeedSpawner(45).rng("roni"))
        assert report.rejection_rate == 0.0
        assert spam_filter.classifier.nspam + spam_filter.classifier.nham == len(pool)


class TestTrainWithDynamicThreshold:
    def test_returns_filter_with_fitted_thresholds(self, pool):
        spam_filter, fit = train_with_dynamic_threshold(pool, SeedSpawner(46).rng("t"))
        assert spam_filter.ham_cutoff == fit.ham_cutoff
        assert spam_filter.spam_cutoff == fit.spam_cutoff

    def test_poisoned_training_moves_thresholds_up(self, small_corpus, pool):
        from repro.corpus.dataset import Dataset

        attack = UsenetDictionaryAttack.from_vocabulary(small_corpus.vocabulary)
        batch = attack.generate(20, SeedSpawner(47).rng("a"))
        poisoned = Dataset(pool.messages + attack_messages_as_dataset(batch))
        clean_filter, clean_fit = train_with_dynamic_threshold(
            pool, SeedSpawner(48).rng("t")
        )
        _, poisoned_fit = train_with_dynamic_threshold(
            poisoned, SeedSpawner(48).rng("t")
        )
        assert poisoned_fit.ham_cutoff > clean_fit.ham_cutoff
