"""Hash-seed determinism: the table layout contract, end to end.

Token sets are ``set``/``frozenset`` objects, and set iteration order
varies with ``PYTHONHASHSEED`` — so any code path that assigned IDs in
iteration order made the token table layout (and everything ID-keyed
downstream: count columns, snapshot WALs, persisted dumps, encoded
arrays, grouping keys) differ between two runs of the *same* program.
These tests run identical work under several explicit hash seeds in
subprocesses and assert the observable state is identical, which is
the foundation the replication engine's byte-identical-records
guarantee stands on.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

SRC = str(Path(__file__).resolve().parent.parent / "src")

HASH_SEEDS = ("0", "1", "2")


def _run_under_hash_seed(script: str, hash_seed: str) -> str:
    env = os.environ.copy()
    env["PYTHONHASHSEED"] = hash_seed
    env["PYTHONPATH"] = SRC + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    result = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True,
        text=True,
        env=env,
        check=False,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


_TABLE_LAYOUT_SCRIPT = """
import json
from repro.spambayes.classifier import Classifier
from repro.spambayes.persistence import classifier_to_dict
from repro.spambayes.token_table import TokenTable

# encode_unique: one batch of brand-new tokens arriving as a set.
table = TokenTable()
first = table.encode_unique({"pear", "apple", "quince", "mango", "banana"})
second = table.encode_unique({"mango", "cherry", "apple", "date"})

# The string-facing training path interns through the same layer.
classifier = Classifier()
classifier.learn({"zeta", "alpha", "mu", "kappa"}, True)
classifier.learn_repeated({"mu", "omega", "beta"}, False, 3)
classifier.unlearn({"mu", "omega", "beta"}, False)

print(json.dumps({
    "table": list(table),
    "first": list(first),
    "second": list(second),
    "classifier_table": list(classifier.table),
    "dump": classifier_to_dict(classifier),
}))
"""


@pytest.mark.slow
class TestTableLayoutAcrossHashSeeds:
    def test_same_encode_same_layout_and_dump_under_three_hash_seeds(self):
        outputs = [
            _run_under_hash_seed(_TABLE_LAYOUT_SCRIPT, seed) for seed in HASH_SEEDS
        ]
        parsed = [json.loads(output) for output in outputs]
        for other in parsed[1:]:
            assert other == parsed[0]
        # And the layout is the documented one: batch arrival order,
        # sorted within each batch.
        assert parsed[0]["table"] == [
            "apple", "banana", "mango", "pear", "quince", "cherry", "date",
        ]

    def test_save_classifier_dumps_identical_across_hash_seeds(self, tmp_path):
        script = f"""
import pathlib
from repro.spambayes.classifier import Classifier
from repro.spambayes.persistence import save_classifier

classifier = Classifier()
classifier.learn({{"cash", "offer", "prize", "winner"}}, True)
classifier.learn({{"meeting", "agenda", "notes"}}, False)
out = pathlib.Path(r"{tmp_path}") / ("dump-" + __import__("os").environ["PYTHONHASHSEED"] + ".json")
save_classifier(classifier, out)
print(out)
"""
        paths = [
            Path(_run_under_hash_seed(script, seed).strip()) for seed in HASH_SEEDS
        ]
        blobs = [path.read_bytes() for path in paths]
        assert blobs[1] == blobs[0]
        assert blobs[2] == blobs[0]


_REPLICATE_SCRIPT = """
import json
from repro.scenarios import replicate_scenario

record = replicate_scenario(
    "dictionary-vs-none",
    seeds=2,
    overrides=dict(
        inbox_size=120, folds=2, corpus_ham=120, corpus_spam=120,
        attack_fractions=(0.0, 0.05),
    ),
    workers=1,
)
print(json.dumps(record.as_dict(), indent=2))
"""


@pytest.mark.slow
class TestReplicationAcrossHashSeeds:
    def test_replicated_record_byte_identical_across_hash_seeds(self):
        # The acceptance contract behind `repro replicate ... --out`:
        # serialized replication records are byte-identical however the
        # interpreter randomizes string hashing.
        outputs = [
            _run_under_hash_seed(_REPLICATE_SCRIPT, seed) for seed in HASH_SEEDS[:2]
        ]
        assert outputs[1] == outputs[0]


_STREAM_REPLICATE_SCRIPT = """
import json
from repro.scenarios import replicate_scenario

record = replicate_scenario(
    "stream-dictionary-ramp",
    seeds=2,
    overrides=dict(
        ticks=3, ham_per_tick=20, spam_per_tick=20,
        attack_start_tick=2, attack_per_tick=6, test_size=40,
    ),
    workers=%d,
)
print(json.dumps(record.as_dict(), indent=2))
"""


@pytest.mark.slow
class TestStreamReplicationDeterminism:
    """The stream engine under the same contract: serialized stream
    replication records are bit-identical across hash seeds AND across
    worker counts (sequential replicas vs whole-stream tasks in the
    shared pool)."""

    def test_stream_records_identical_across_hash_seeds(self):
        outputs = [
            _run_under_hash_seed(_STREAM_REPLICATE_SCRIPT % 1, seed)
            for seed in HASH_SEEDS[:2]
        ]
        assert outputs[1] == outputs[0]

    def test_stream_records_identical_across_worker_counts(self):
        sequential = _run_under_hash_seed(_STREAM_REPLICATE_SCRIPT % 1, HASH_SEEDS[0])
        pooled = _run_under_hash_seed(_STREAM_REPLICATE_SCRIPT % 2, HASH_SEEDS[1])
        assert pooled == sequential
