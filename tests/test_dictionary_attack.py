"""Tests for the dictionary attack family."""

from __future__ import annotations

import pytest

from repro.attacks.dictionary import (
    AspellDictionaryAttack,
    DictionaryAttack,
    OptimalDictionaryAttack,
    UsenetDictionaryAttack,
)
from repro.attacks.payload import HeaderPolicy
from repro.corpus.wordlists import AttackWordlist, build_aspell_dictionary, build_usenet_wordlist
from repro.errors import AttackError
from repro.rng import SeedSpawner


class TestDictionaryAttack:
    def test_empty_words_rejected(self):
        with pytest.raises(AttackError):
            DictionaryAttack([])

    def test_generate_single_identical_group(self):
        attack = DictionaryAttack(["a", "b", "c"], name="tiny")
        batch = attack.generate(10, SeedSpawner(1).rng("x"))
        assert batch.message_count == 10
        assert len(batch.groups) == 1
        assert batch.groups[0].tokens == {"a", "b", "c"}

    def test_generate_zero_messages(self):
        attack = DictionaryAttack(["a"])
        assert attack.generate(0, SeedSpawner(1).rng("x")).message_count == 0

    def test_negative_count_rejected(self):
        with pytest.raises(AttackError):
            DictionaryAttack(["a"]).generate(-1, SeedSpawner(1).rng("x"))

    def test_header_policy_empty(self):
        assert DictionaryAttack(["a"]).header_policy is HeaderPolicy.EMPTY

    def test_taxonomy_indiscriminate(self):
        assert DictionaryAttack(["a"]).taxonomy.specificity.value == "indiscriminate"

    def test_rng_independent(self):
        attack = DictionaryAttack(["a", "b"])
        a = attack.generate(3, SeedSpawner(1).rng("x"))
        b = attack.generate(3, SeedSpawner(2).rng("y"))
        assert a.groups[0].tokens == b.groups[0].tokens


class TestVariants:
    def test_optimal_covers_all_words(self, tiny_vocabulary):
        attack = OptimalDictionaryAttack.from_vocabulary(tiny_vocabulary)
        assert attack.tokens == frozenset(tiny_vocabulary.all_words())
        assert attack.name == "optimal"

    def test_aspell_from_vocabulary(self, tiny_vocabulary):
        attack = AspellDictionaryAttack.from_vocabulary(tiny_vocabulary)
        assert attack.dictionary_size == tiny_vocabulary.profile.aspell_size
        assert attack.name == "aspell"

    def test_aspell_rejects_wrong_wordlist(self, tiny_vocabulary):
        usenet = build_usenet_wordlist(tiny_vocabulary)
        with pytest.raises(AttackError):
            AspellDictionaryAttack(usenet)

    def test_usenet_rejects_wrong_wordlist(self, tiny_vocabulary):
        aspell = build_aspell_dictionary(tiny_vocabulary)
        with pytest.raises(AttackError):
            UsenetDictionaryAttack(aspell)

    def test_usenet_top_k(self, tiny_vocabulary):
        attack = UsenetDictionaryAttack.from_vocabulary(tiny_vocabulary, top_k=50)
        assert attack.dictionary_size == 50
        assert attack.name == "usenet-top50"

    def test_usenet_full(self, tiny_vocabulary):
        full = UsenetDictionaryAttack.from_vocabulary(tiny_vocabulary)
        truncated = UsenetDictionaryAttack.from_vocabulary(tiny_vocabulary, top_k=10)
        assert truncated.tokens < full.tokens

    def test_strength_ordering_by_construction(self, tiny_vocabulary):
        """Optimal's payload must be a strict superset of both lists'
        ham-relevant words (entities are in neither list)."""
        optimal = OptimalDictionaryAttack.from_vocabulary(tiny_vocabulary)
        aspell = AspellDictionaryAttack.from_vocabulary(tiny_vocabulary)
        usenet = UsenetDictionaryAttack.from_vocabulary(tiny_vocabulary)
        assert aspell.tokens < optimal.tokens
        assert usenet.tokens < optimal.tokens
        assert set(tiny_vocabulary.entity) <= optimal.tokens
        assert not (set(tiny_vocabulary.entity) & aspell.tokens)
        assert not (set(tiny_vocabulary.entity) & usenet.tokens)
