"""The docs-link checker runs clean as part of tier-1.

This is what keeps README/docs honest: a reference to a file that was
renamed away, or to a CLI subcommand that never existed, fails the
suite — not just the ``make docs-check`` target.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def _load_checker():
    spec = importlib.util.spec_from_file_location(
        "check_docs_links", REPO_ROOT / "tools" / "check_docs_links.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_docs_references_resolve(capsys):
    checker = _load_checker()
    assert checker.main() == 0, capsys.readouterr().out


def test_checker_flags_broken_references(tmp_path):
    checker = _load_checker()
    doc = tmp_path / "bad.md"
    doc.write_text(
        "See [missing](no/such/file.md) and `src/repro/nonexistent.py`.\n"
        "Run `python -m repro figure9` or `python -m repro figure1 --bogus 3`.\n",
        encoding="utf-8",
    )
    problems = checker.check_file(doc, checker.cli_tables())
    assert len(problems) == 4, problems


def test_checker_accepts_known_cli_usage(tmp_path):
    checker = _load_checker()
    doc = tmp_path / "good.md"
    doc.write_text(
        "`python -m repro figure2 figure3 --scale paper --seed 3 --workers 4`\n"
        "`python -m repro all --out results/`\n"
        "`python -m repro list-scenarios`\n"
        "`python -m repro run-scenario focused-vs-roni --set pool_size=200 --seed 3`\n"
        "`python -m repro replicate dictionary-vs-none --seeds 8 --workers 4 --out r.json`\n",
        encoding="utf-8",
    )
    assert checker.check_file(doc, checker.cli_tables()) == []


def test_checker_tracks_the_profile_flag(tmp_path):
    """`--profile` is derived from the live run-scenario parser, so docs
    may use it — and a typo'd variant still fails."""
    checker = _load_checker()
    doc = tmp_path / "profile.md"
    doc.write_text(
        "`python -m repro run-scenario stream-usenet-burst --set ticks=10 --profile`\n",
        encoding="utf-8",
    )
    assert checker.check_file(doc, checker.cli_tables()) == []
    bad = tmp_path / "typo.md"
    bad.write_text(
        "`python -m repro run-scenario stream-usenet-burst --profiled`\n",
        encoding="utf-8",
    )
    assert len(checker.check_file(bad, checker.cli_tables())) == 1


def test_checker_keeps_the_two_cli_grammars_apart(tmp_path):
    """A scenario name or --set outside run-scenario is still invalid,
    and run-scenario only accepts registered scenario names."""
    checker = _load_checker()
    doc = tmp_path / "mixed.md"
    doc.write_text(
        "`python -m repro focused-vs-roni`\n"               # scenario name w/o command
        "`python -m repro figure1 --set folds=2`\n"          # --set on artifact grammar
        "`python -m repro run-scenario no-such-scenario`\n"  # unregistered name
        "`python -m repro run-scenario figure1-dictionary --bogus 1`\n"
        "`python -m repro replicate figure9`\n"              # unregistered name
        "`python -m repro replicate dictionary-vs-none --folds 2`\n",  # unknown flag
        encoding="utf-8",
    )
    problems = checker.check_file(doc, checker.cli_tables())
    assert len(problems) == 6, problems
