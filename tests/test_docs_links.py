"""The docs-link checker runs clean as part of tier-1.

This is what keeps README/docs honest: a reference to a file that was
renamed away, or to a CLI subcommand that never existed, fails the
suite — not just the ``make docs-check`` target.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def _load_checker():
    spec = importlib.util.spec_from_file_location(
        "check_docs_links", REPO_ROOT / "tools" / "check_docs_links.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_docs_references_resolve(capsys):
    checker = _load_checker()
    assert checker.main() == 0, capsys.readouterr().out


def test_checker_flags_broken_references(tmp_path):
    checker = _load_checker()
    doc = tmp_path / "bad.md"
    doc.write_text(
        "See [missing](no/such/file.md) and `src/repro/nonexistent.py`.\n"
        "Run `python -m repro figure9` or `python -m repro figure1 --bogus 3`.\n",
        encoding="utf-8",
    )
    from repro.cli import ARTIFACTS, build_parser

    artifacts = set(ARTIFACTS) | {"all"}
    flags = {opt for action in build_parser()._actions for opt in action.option_strings}
    problems = checker.check_file(doc, artifacts, flags)
    assert len(problems) == 4, problems


def test_checker_accepts_known_cli_usage(tmp_path):
    checker = _load_checker()
    doc = tmp_path / "good.md"
    doc.write_text(
        "`python -m repro figure2 figure3 --scale paper --seed 3 --workers 4`\n"
        "`python -m repro all --out results/`\n",
        encoding="utf-8",
    )
    from repro.cli import ARTIFACTS, build_parser

    artifacts = set(ARTIFACTS) | {"all"}
    flags = {opt for action in build_parser()._actions for opt in action.option_strings}
    assert checker.check_file(doc, artifacts, flags) == []
