"""End-to-end story test: the paper's narrative as one scenario.

A single deterministic walk through the whole system — corpus, clean
filter, both attacks, both defenses — asserting at each step what the
paper says should happen.  If this test passes, the headline narrative
of the paper reproduces on this machine.
"""

from __future__ import annotations

import pytest

from repro import SpamFilter, TrecStyleCorpus
from repro.attacks import FocusedAttack, UsenetDictionaryAttack
from repro.defenses import RoniDefense, train_with_dynamic_threshold
from repro.corpus.dataset import Dataset
from repro.experiments.crossval import attack_message_count, evaluate_dataset, train_grouped
from repro.experiments.threshold_exp import attack_messages_as_dataset
from repro.rng import SeedSpawner
from repro.spambayes.filter import Label


@pytest.fixture(scope="module")
def world(small_corpus):
    spawner = SeedSpawner(2008).spawn("end-to-end")
    inbox = small_corpus.dataset.sample_inbox(600, 0.5, spawner.rng("inbox"))
    inbox.tokenize_all()
    inbox_ids = {m.msgid for m in inbox}
    held_out = [m for m in small_corpus.dataset if m.msgid not in inbox_ids]
    spam_filter = SpamFilter()
    train_grouped(spam_filter.classifier, inbox)
    return spawner, inbox, held_out, spam_filter


def test_act1_clean_filter_works(world):
    _, _, held_out, spam_filter = world
    counts = evaluate_dataset(spam_filter.classifier, held_out[:300])
    assert counts.ham_misclassified_rate < 0.05
    assert counts.spam_as_spam_rate > 0.85


def test_act2_dictionary_attack_disables_filter(world, small_corpus):
    spawner, inbox, held_out, spam_filter = world
    attack = UsenetDictionaryAttack.from_vocabulary(small_corpus.vocabulary)
    batch = attack.generate(
        attack_message_count(len(inbox), 0.01), spawner.rng("dict-attack")
    )
    poisoned = spam_filter.classifier.copy()
    batch.train_into(poisoned)
    counts = evaluate_dataset(poisoned, held_out[:300])
    # "renders the filter unusable with as little as 1% control"
    assert counts.ham_misclassified_rate > 0.5


def test_act3_focused_attack_buries_the_bid(world):
    spawner, inbox, held_out, spam_filter = world
    target = next(m for m in held_out if not m.is_spam)
    assert spam_filter.classify_tokens(target.tokens()).label is Label.HAM
    attack = FocusedAttack(
        target.email,
        guess_probability=0.9,
        header_pool=[m.email for m in inbox.spam],
    )
    batch = attack.generate(36, spawner.rng("focused-attack"))  # 6% of inbox
    working = spam_filter.classifier.copy()
    batch.train_into(working)
    # The bid no longer reaches the inbox...
    assert working.score(target.tokens()) > spam_filter.classifier.options.ham_cutoff
    # ...while other ham is barely disturbed (Targeted, not Indiscriminate).
    other_ham = [m for m in held_out[:200] if not m.is_spam and m.msgid != target.msgid]
    counts = evaluate_dataset(working, other_ham)
    assert counts.ham_misclassified_rate < 0.25


def test_act4_roni_stops_the_dictionary_attack(world, small_corpus):
    spawner, inbox, held_out, _ = world
    defense = RoniDefense(inbox, spawner.rng("roni"))
    attack = UsenetDictionaryAttack.from_vocabulary(small_corpus.vocabulary)
    batch = attack.generate(3, spawner.rng("roni-attack"))
    for group in batch.groups:
        assert defense.judge_tokens(group.training_tokens, is_spam=True).rejected
    # And does not reject ordinary traffic.
    for message in held_out[:6]:
        assert not defense.judge(message).rejected


def test_act5_dynamic_threshold_rescues_ham_at_a_price(world, small_corpus):
    spawner, inbox, held_out, spam_filter = world
    attack = UsenetDictionaryAttack.from_vocabulary(small_corpus.vocabulary)
    count = attack_message_count(len(inbox), 0.05)
    batch = attack.generate(count, spawner.rng("thr-attack"))
    poisoned_training = Dataset(
        inbox.messages + attack_messages_as_dataset(batch), name="poisoned"
    )
    defended, fit = train_with_dynamic_threshold(
        poisoned_training, spawner.rng("thr-fit")
    )
    assert fit.ham_cutoff > spam_filter.classifier.options.ham_cutoff
    counts = evaluate_dataset(defended.classifier, held_out[:300])
    # Ham rescued from the spam folder...
    assert counts.ham_as_spam_rate < 0.1
    # ...but spam piles up in unsure (the paper's closing caveat).
    assert counts.spam_as_unsure_rate > 0.1
