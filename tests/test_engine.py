"""Tests for the parallel experiment engine.

The engine's contract is absolute: any worker count, and the retained
sequential reference implementation, produce bit-identical results.
These tests pin that contract on small corpora, plus the classifier
APIs the engine is built on (snapshot/restore, bulk scoring).
"""

from __future__ import annotations

import random

import pytest

from repro.corpus.trec import TrecStyleCorpus
from repro.corpus.vocabulary import TINY_PROFILE
from repro.attacks.dictionary import OptimalDictionaryAttack, UsenetDictionaryAttack
from repro.engine.runner import ParallelRunner, resolve_workers
from repro.engine.seeding import drawn_seeds, resolve_root_seed
from repro.engine.sweep import (
    SweepSpec,
    run_attack_sweeps,
    sequential_reference_sweep,
    train_grouped,
    unlearn_grouped,
)
from repro.errors import EngineError, ExperimentError, TrainingError
from repro.experiments.crossval import attack_fraction_sweep
from repro.rng import SeedSpawner
from repro.spambayes.classifier import Classifier


# ----------------------------------------------------------------------
# Fixtures
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def sweep_corpus():
    return TrecStyleCorpus.generate(n_ham=150, n_spam=150, profile=TINY_PROFILE, seed=11)


@pytest.fixture(scope="module")
def sweep_inbox(sweep_corpus):
    inbox = sweep_corpus.dataset.sample_inbox(180, 0.5, random.Random(3))
    inbox.tokenize_all()
    return inbox


def _classifier_state(classifier: Classifier):
    return (
        classifier.nspam,
        classifier.nham,
        {
            token: (record.spamcount, record.hamcount)
            for token, record in (
                (t, classifier.word_info(t)) for t in classifier.iter_vocabulary()
            )
        },
    )


def _trained_classifier(corpus) -> Classifier:
    classifier = Classifier()
    train_grouped(classifier, corpus.dataset)
    return classifier


# ----------------------------------------------------------------------
# ParallelRunner
# ----------------------------------------------------------------------


def _double(context, task):
    return context * task


def _fail_on_three(context, task):
    if task == 3:
        raise ValueError("boom")
    return task


class TestParallelRunner:
    def test_sequential_map_preserves_order(self):
        assert ParallelRunner(1).map(_double, 10, [3, 1, 2]) == [30, 10, 20]

    def test_parallel_map_matches_sequential(self):
        tasks = list(range(7))
        assert ParallelRunner(2).map(_double, 5, tasks) == ParallelRunner(1).map(
            _double, 5, tasks
        )

    def test_single_task_runs_inline_even_with_workers(self):
        assert ParallelRunner(4).map(_double, 2, [21]) == [42]

    def test_worker_exception_propagates(self):
        with pytest.raises(ValueError, match="boom"):
            ParallelRunner(2).map(_fail_on_three, None, [1, 2, 3, 4])

    def test_resolve_workers(self):
        assert resolve_workers(3) == 3
        assert resolve_workers(None) >= 1
        assert resolve_workers(0) >= 1
        with pytest.raises(EngineError):
            resolve_workers(-1)


# ----------------------------------------------------------------------
# Seeding helpers
# ----------------------------------------------------------------------


class TestSeeding:
    def test_drawn_seeds_replays_sequential_draws(self):
        a, b = random.Random(9), random.Random(9)
        assert drawn_seeds(a, 5) == [b.getrandbits(64) for _ in range(5)]
        # Both generators end in the same state.
        assert a.random() == b.random()

    def test_labelled_spawning_is_stable(self):
        """Labelled task streams (repro.rng.spawn_seed) are the other
        determinism mechanism the engine relies on."""
        from repro.rng import spawn_seed

        assert spawn_seed(1, "fold[0]") == spawn_seed(1, "fold[0]")
        assert spawn_seed(1, "fold[0]") != spawn_seed(1, "fold[1]")
        assert spawn_seed(1, "fold[0]") != spawn_seed(2, "fold[0]")

    def test_resolve_root_seed(self):
        assert resolve_root_seed(None) == 0
        assert resolve_root_seed("") == 0
        assert resolve_root_seed("17") == 17
        assert resolve_root_seed(23) == 23
        from repro.rng import DEFAULT_SEED

        assert resolve_root_seed("default") == DEFAULT_SEED
        with pytest.raises(EngineError):
            resolve_root_seed("not-a-seed")


# ----------------------------------------------------------------------
# Snapshot / restore
# ----------------------------------------------------------------------


class TestSnapshotRestore:
    def test_round_trip_leaves_counts_untouched(self, sweep_corpus):
        classifier = _trained_classifier(sweep_corpus)
        before = _classifier_state(classifier)
        snap = classifier.snapshot()
        classifier.learn_repeated(frozenset(f"attack{i}" for i in range(200)), True, 50)
        classifier.unlearn(sweep_corpus.dataset[0].tokens(), sweep_corpus.dataset[0].is_spam)
        assert _classifier_state(classifier) != before
        classifier.restore(snap)
        assert _classifier_state(classifier) == before
        assert not classifier.snapshot_active

    def test_restored_scores_are_bit_identical(self, sweep_corpus):
        classifier = _trained_classifier(sweep_corpus)
        tests = [m.tokens() for m in sweep_corpus.dataset.messages[:40]]
        before = classifier.score_many(tests)
        snap = classifier.snapshot()
        classifier.learn_repeated(frozenset(["viagra", "casino", "winner"]), True, 500)
        classifier.restore(snap)
        assert classifier.score_many(tests) == before

    def test_unlearn_grouped_is_exact_inverse_of_train_grouped(self, sweep_corpus):
        classifier = _trained_classifier(sweep_corpus)
        before = _classifier_state(classifier)
        extra = sweep_corpus.dataset.messages[:25]
        snap = classifier.snapshot()
        unlearn_grouped(classifier, extra)
        train_grouped(classifier, extra)
        assert _classifier_state(classifier) == before
        classifier.restore(snap)
        assert _classifier_state(classifier) == before

    def test_fold_model_by_subtraction_equals_retraining(self, sweep_inbox):
        """full - stripe == train(K-1 folds): the engine's core identity."""
        pairs = sweep_inbox.k_fold_indices(3, random.Random(4))
        full = Classifier()
        train_grouped(full, sweep_inbox)
        for train_idx, test_idx in pairs:
            retrained = Classifier()
            train_grouped(retrained, (sweep_inbox[i] for i in train_idx))
            snap = full.snapshot()
            unlearn_grouped(full, [sweep_inbox[i] for i in test_idx])
            assert _classifier_state(full) == _classifier_state(retrained)
            full.restore(snap)

    def test_nested_snapshot_rejected(self):
        classifier = Classifier()
        classifier.snapshot()
        with pytest.raises(TrainingError):
            classifier.snapshot()

    def test_restore_requires_matching_owner_and_active(self):
        a, b = Classifier(), Classifier()
        snap = a.snapshot()
        with pytest.raises(TrainingError):
            b.restore(snap)
        a.restore(snap)
        with pytest.raises(TrainingError):
            a.restore(snap)  # single-use


# ----------------------------------------------------------------------
# Bulk scoring
# ----------------------------------------------------------------------


class TestScoreMany:
    def test_matches_per_message_score_exactly(self, sweep_corpus):
        classifier = _trained_classifier(sweep_corpus)
        token_sets = [m.tokens() for m in sweep_corpus.dataset.messages[:60]]
        token_sets.append(frozenset())  # no evidence -> 0.5
        token_sets.append(frozenset(["never-seen-token"]))
        bulk = classifier.score_many(token_sets)
        assert bulk == [classifier.score(ts) for ts in token_sets]

    def test_accepts_unhashed_iterables(self, sweep_corpus):
        classifier = _trained_classifier(sweep_corpus)
        tokens = list(sweep_corpus.dataset[0].tokens())
        assert classifier.score_many([tokens]) == [classifier.score(tokens)]


# ----------------------------------------------------------------------
# Sweep equivalence: reference == engine(workers=1) == engine(workers=N)
# ----------------------------------------------------------------------


def _sweep_signature(points):
    return [
        (p.attack_fraction, p.attack_message_count, p.confusion.as_dict()) for p in points
    ]


class TestSweepEquivalence:
    FRACTIONS = (0.0, 0.01, 0.05)

    def test_engine_matches_sequential_reference(self, sweep_corpus, sweep_inbox):
        attack = OptimalDictionaryAttack.from_vocabulary(sweep_corpus.vocabulary)
        reference = sequential_reference_sweep(
            sweep_inbox, attack, self.FRACTIONS, 3, random.Random(77)
        )
        engine = attack_fraction_sweep(
            sweep_inbox, attack, self.FRACTIONS, 3, random.Random(77), workers=1
        )
        assert _sweep_signature(engine) == _sweep_signature(reference)

    def test_parallel_matches_sequential(self, sweep_corpus, sweep_inbox):
        attack = OptimalDictionaryAttack.from_vocabulary(sweep_corpus.vocabulary)
        sequential = attack_fraction_sweep(
            sweep_inbox, attack, self.FRACTIONS, 3, random.Random(77), workers=1
        )
        parallel = attack_fraction_sweep(
            sweep_inbox, attack, self.FRACTIONS, 3, random.Random(77), workers=3
        )
        assert _sweep_signature(parallel) == _sweep_signature(sequential)

    def test_multi_spec_sweep_results(self, sweep_corpus, sweep_inbox):
        """Several variants share the planning rng layout of the
        sequential per-variant loop, at any worker count and with or
        without the shared clean model."""
        def build_specs():
            spawner = SeedSpawner(5).spawn("test-sweeps")
            return [
                (
                    SweepSpec(
                        key=name,
                        attack=attack,
                        fractions=self.FRACTIONS,
                    ),
                    spawner.rng(f"sweep:{name}"),
                )
                for name, attack in (
                    ("optimal", OptimalDictionaryAttack.from_vocabulary(sweep_corpus.vocabulary)),
                    ("usenet", UsenetDictionaryAttack.from_vocabulary(sweep_corpus.vocabulary)),
                )
            ]

        runs = [
            run_attack_sweeps(sweep_inbox, build_specs(), 3, workers=workers, reuse_clean_model=reuse)
            for workers, reuse in ((1, True), (2, True), (1, False))
        ]
        signatures = [
            [(result.key, result.confusion_dicts()) for result in run] for run in runs
        ]
        assert signatures[0] == signatures[1] == signatures[2]

    def test_rejects_descending_fractions(self, sweep_corpus):
        with pytest.raises(ExperimentError):
            SweepSpec(
                key="x",
                attack=OptimalDictionaryAttack.from_vocabulary(sweep_corpus.vocabulary),
                fractions=(0.05, 0.01),
            )

    def test_rejects_duplicate_spec_keys(self, sweep_corpus, sweep_inbox):
        attack = OptimalDictionaryAttack.from_vocabulary(sweep_corpus.vocabulary)
        specs = [
            (SweepSpec(key="dup", attack=attack, fractions=(0.0,)), random.Random(1)),
            (SweepSpec(key="dup", attack=attack, fractions=(0.0,)), random.Random(2)),
        ]
        with pytest.raises(EngineError):
            run_attack_sweeps(sweep_inbox, specs, 3)


# ----------------------------------------------------------------------
# Driver-level equivalence: workers=2 == workers=1
# ----------------------------------------------------------------------


class TestDriverEquivalence:
    def test_dictionary_experiment(self):
        from dataclasses import replace
        from repro.experiments.dictionary_exp import (
            DictionaryExperimentConfig,
            run_dictionary_experiment,
        )

        config = DictionaryExperimentConfig(
            inbox_size=120,
            folds=3,
            attack_fractions=(0.0, 0.05),
            variants=("optimal", "usenet"),
            profile=TINY_PROFILE,
            corpus_ham=120,
            corpus_spam=120,
            seed=2,
        )
        sequential = run_dictionary_experiment(config)
        parallel = run_dictionary_experiment(replace(config, workers=2))
        assert sequential.to_record().as_dict() == parallel.to_record().as_dict()

    def test_threshold_experiment(self):
        from dataclasses import replace
        from repro.experiments.threshold_exp import (
            ThresholdExperimentConfig,
            run_threshold_experiment,
        )

        config = ThresholdExperimentConfig(
            inbox_size=120,
            folds=3,
            attack_fractions=(0.0, 0.05),
            quantiles=(0.10,),
            profile=TINY_PROFILE,
            corpus_ham=120,
            corpus_spam=120,
            seed=2,
        )
        sequential = run_threshold_experiment(config)
        parallel = run_threshold_experiment(replace(config, workers=2))
        assert sequential.to_record().as_dict() == parallel.to_record().as_dict()
        assert sequential.fitted_thresholds == parallel.fitted_thresholds

    def test_focused_experiments(self):
        from dataclasses import replace
        from repro.experiments.focused_exp import (
            FocusedExperimentConfig,
            run_focused_knowledge_experiment,
            run_focused_size_experiment,
        )

        config = FocusedExperimentConfig(
            inbox_size=100,
            n_targets=3,
            repetitions=2,
            attack_count=10,
            guess_probabilities=(0.3, 0.9),
            size_sweep_fractions=(0.0, 0.05),
            profile=TINY_PROFILE,
            corpus_ham=120,
            corpus_spam=120,
            seed=2,
        )
        assert (
            run_focused_knowledge_experiment(config).to_record().as_dict()
            == run_focused_knowledge_experiment(replace(config, workers=2)).to_record().as_dict()
        )
        assert (
            run_focused_size_experiment(config).to_record().as_dict()
            == run_focused_size_experiment(replace(config, workers=2)).to_record().as_dict()
        )

    def test_roni_experiment(self):
        from dataclasses import replace
        from repro.defenses.roni import RoniConfig
        from repro.experiments.roni_exp import RoniExperimentConfig, run_roni_experiment

        config = RoniExperimentConfig(
            pool_size=80,
            roni=RoniConfig(train_size=10, validation_size=20, trials=2),
            n_nonattack_spam=6,
            repetitions_per_variant=2,
            variants=("optimal", "usenet"),
            profile=TINY_PROFILE,
            corpus_ham=120,
            corpus_spam=120,
            seed=2,
        )
        sequential = run_roni_experiment(config)
        parallel = run_roni_experiment(replace(config, workers=2))
        assert sequential.attack_impacts == parallel.attack_impacts
        assert sequential.nonattack_spam_impacts == parallel.nonattack_spam_impacts

    def test_goodword_experiment(self):
        from dataclasses import replace
        from repro.experiments.goodword_exp import (
            GoodWordExperimentConfig,
            run_goodword_experiment,
        )

        config = GoodWordExperimentConfig(
            inbox_size=120,
            n_test_spam=8,
            word_budgets=(0, 20, 80),
            oracle_candidates=200,
            profile=TINY_PROFILE,
            corpus_ham=140,
            corpus_spam=140,
            seed=2,
        )
        sequential = run_goodword_experiment(config)
        parallel = run_goodword_experiment(replace(config, workers=2))
        assert sequential.evasion == parallel.evasion
        assert sequential.median_words_to_evade == parallel.median_words_to_evade
