"""Smoke tests for every script in ``examples/``.

The examples are documentation that executes; when driver internals
move (as they did for the scenario registry), nothing else imports
them, so without these tests they rot silently.  Each script is run in
a subprocess at ``REPRO_EXAMPLE_SCALE=tiny`` (the knob every example
honours) and must exit 0 with non-trivial output.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
EXAMPLES_DIR = REPO_ROOT / "examples"
EXAMPLE_SCRIPTS = sorted(EXAMPLES_DIR.glob("*.py"))

# A phrase each demo must print — a cheap guard that the script not
# only exited 0 but actually reached its conclusion.
EXPECTED_PHRASES = {
    "quickstart.py": "restored",
    "dictionary_attack_demo.py": "RONI gating the retrain",
    "focused_attack_demo.py": "surgical denial of service",
    "defense_comparison.py": "trading one nuisance for another",
    "retraining_simulation.py": "weekly retraining under a dictionary attack",
    "scenario_registry_demo.py": "Section 5.1 closing caveat",
}


def test_every_example_is_covered():
    """A new example must declare its expected output phrase here."""
    assert {script.name for script in EXAMPLE_SCRIPTS} == set(EXPECTED_PHRASES)


@pytest.mark.parametrize("script", EXAMPLE_SCRIPTS, ids=lambda s: s.name)
def test_example_runs_clean(script: Path):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    env["REPRO_EXAMPLE_SCALE"] = "tiny"
    completed = subprocess.run(
        [sys.executable, str(script)],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, (
        f"{script.name} failed:\n{completed.stdout[-1500:]}\n{completed.stderr[-1500:]}"
    )
    assert EXPECTED_PHRASES[script.name] in completed.stdout
