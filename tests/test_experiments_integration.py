"""Integration tests: run each paper experiment at reduced scale and
assert the paper's shape claims (see repro.experiments.paper_targets).

These are the most important tests in the suite — they check that the
*system*, not just its parts, reproduces the published behaviour.
Sizes are tuned to run in a few seconds each.
"""

from __future__ import annotations

import pytest

from repro.experiments.dictionary_exp import (
    DictionaryExperimentConfig,
    run_dictionary_experiment,
)
from repro.experiments.focused_exp import (
    FocusedExperimentConfig,
    run_focused_knowledge_experiment,
    run_focused_size_experiment,
)
from repro.experiments.roni_exp import RoniExperimentConfig, run_roni_experiment
from repro.experiments.threshold_exp import (
    ThresholdExperimentConfig,
    run_threshold_experiment,
)


@pytest.fixture(scope="module")
def dictionary_result(suite_workers):
    config = DictionaryExperimentConfig(
        inbox_size=600,
        folds=2,
        corpus_ham=450,
        corpus_spam=450,
        attack_fractions=(0.0, 0.01, 0.05, 0.10),
        seed=5,
        workers=suite_workers,
    )
    return run_dictionary_experiment(config)


@pytest.mark.slow
class TestFigure1Shape:
    def test_clean_baseline_is_accurate(self, dictionary_result):
        for points in dictionary_result.sweeps.values():
            baseline = points[0].confusion
            assert baseline.ham_misclassified_rate < 0.05

    def test_attack_ordering(self, dictionary_result):
        """Paper claim: optimal >= usenet >= aspell."""
        sweeps = dictionary_result.sweeps
        for index in range(1, 4):
            optimal = sweeps["optimal"][index].confusion.ham_misclassified_rate
            usenet = sweeps["usenet"][index].confusion.ham_misclassified_rate
            aspell = sweeps["aspell"][index].confusion.ham_misclassified_rate
            assert optimal >= usenet - 0.02
            assert usenet >= aspell - 0.02

    def test_unusable_at_one_percent(self, dictionary_result):
        """Paper claim: filter unusable with 1% control."""
        for points in dictionary_result.sweeps.values():
            at_one_percent = points[1].confusion
            assert at_one_percent.ham_misclassified_rate > 0.30

    def test_monotone_in_contamination(self, dictionary_result):
        for points in dictionary_result.sweeps.values():
            rates = [p.confusion.ham_misclassified_rate for p in points]
            for earlier, later in zip(rates, rates[1:]):
                assert later >= earlier - 0.02

    def test_solid_dominates_dashed(self, dictionary_result):
        for points in dictionary_result.sweeps.values():
            for point in points:
                assert (
                    point.confusion.ham_misclassified_rate
                    >= point.confusion.ham_as_spam_rate
                )

    def test_record_serialization(self, dictionary_result):
        record = dictionary_result.to_record()
        assert record.experiment == "figure1-dictionary"
        assert {s.name for s in record.series} == {"optimal", "usenet", "aspell"}


@pytest.fixture(scope="module")
def focused_config(suite_workers):
    return FocusedExperimentConfig(
        inbox_size=500,
        n_targets=8,
        repetitions=2,
        attack_count=30,  # 6% of the inbox, the paper's proportion
        corpus_ham=450,
        corpus_spam=450,
        size_sweep_fractions=(0.0, 0.01, 0.03, 0.06, 0.10),
        seed=5,
        workers=suite_workers,
    )


@pytest.mark.slow
class TestFigure2Shape:
    def test_success_monotone_in_knowledge(self, focused_config):
        result = run_focused_knowledge_experiment(focused_config)
        success = [result.attack_success_rate(p) for p in (0.1, 0.3, 0.5, 0.9)]
        for earlier, later in zip(success, success[1:]):
            assert later >= earlier - 0.05
        # High knowledge must be very effective; low knowledge weak.
        assert success[-1] > 0.7
        assert success[0] < 0.7

    def test_targets_start_as_ham(self, focused_config):
        result = run_focused_knowledge_experiment(focused_config)
        assert result.pre_attack_ham / result.total_targets > 0.8

    def test_label_counts_complete(self, focused_config):
        result = run_focused_knowledge_experiment(focused_config)
        expected = focused_config.n_targets * focused_config.repetitions
        for probability in focused_config.guess_probabilities:
            assert sum(result.label_counts[probability].values()) == expected


@pytest.mark.slow
class TestFigure3Shape:
    def test_misclassification_monotone_in_size(self, focused_config):
        result = run_focused_size_experiment(focused_config)
        rates = [p.ham_misclassified_rate for p in result.points]
        assert rates[0] < 0.1  # no attack, no effect
        for earlier, later in zip(rates, rates[1:]):
            assert later >= earlier - 0.05
        assert rates[-1] > 0.5

    def test_spam_rate_below_filtered_rate(self, focused_config):
        result = run_focused_size_experiment(focused_config)
        for point in result.points:
            assert point.ham_as_spam_rate <= point.ham_misclassified_rate


@pytest.mark.slow
class TestRoniShape:
    @pytest.fixture(scope="class")
    def roni_result(self, suite_workers):
        config = RoniExperimentConfig(
            pool_size=160,
            n_nonattack_spam=20,
            repetitions_per_variant=2,
            corpus_ham=250,
            corpus_spam=250,
            seed=5,
            workers=suite_workers,
        )
        return run_roni_experiment(config)

    def test_separability(self, roni_result):
        assert roni_result.separable
        assert roni_result.min_attack_impact > roni_result.max_nonattack_impact

    def test_perfect_detection_at_threshold(self, roni_result):
        threshold = roni_result.config.roni.ham_as_ham_threshold
        assert roni_result.detection_rate(threshold) == 1.0
        assert roni_result.false_positive_rate(threshold) == 0.0

    def test_all_variants_measured(self, roni_result):
        assert set(roni_result.attack_impacts) == set(roni_result.config.variants)
        for impacts in roni_result.attack_impacts.values():
            assert len(impacts) == roni_result.config.repetitions_per_variant


@pytest.mark.slow
class TestFigure5Shape:
    @pytest.fixture(scope="class")
    def threshold_result(self, suite_workers):
        config = ThresholdExperimentConfig(
            inbox_size=500,
            folds=2,
            corpus_ham=400,
            corpus_spam=400,
            attack_fractions=(0.0, 0.01, 0.05),
            seed=5,
            workers=suite_workers,
        )
        return run_threshold_experiment(config)

    def test_defense_protects_ham(self, threshold_result):
        """Defended ham misclassification far below undefended, and
        ham-as-spam (dashed) near zero, at every attacked level."""
        undefended = threshold_result.series["no-defense"]
        for arm in ("threshold-0.05", "threshold-0.10"):
            defended = threshold_result.series[arm]
            for u_point, d_point in zip(undefended[1:], defended[1:]):
                assert d_point.ham_misclassified_rate < u_point.ham_misclassified_rate
                assert d_point.ham_as_spam_rate < 0.15

    def test_defense_cost_spam_as_unsure(self, threshold_result):
        """The paper's caveat: under attack the defended filter sends
        most spam to unsure."""
        for arm in ("threshold-0.05", "threshold-0.10"):
            attacked_points = threshold_result.series[arm][1:]
            assert max(p.spam_as_unsure_rate for p in attacked_points) > 0.3

    def test_fitted_thresholds_rise_with_attack(self, threshold_result):
        for arm, triples in threshold_result.fitted_thresholds.items():
            theta0_values = [theta0 for _, theta0, _ in triples]
            assert theta0_values[-1] > theta0_values[0]
