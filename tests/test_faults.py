"""Tests for the fault-injection harness and the supervision layer.

Four layers:

* :mod:`repro.engine.faults` — spec parsing, deterministic hash
  draws, site gating, worker-only firing;
* :class:`repro.engine.supervise.SupervisedPool` — the recovery
  ladder itself: crash → respawn → retry → degrade, hang → deadline →
  retry, app errors propagating unretried, with stats proving the
  faults actually fired;
* :mod:`repro.engine.checkpoint` — replica checkpoint round-trips and
  rejection of foreign/torn files;
* the **differential fault suite** — the module's reason to exist:
  every scenario family produces byte-identical records under
  injected crashes and hangs (both kernels, ``workers=2``), a killed
  ``repro replicate`` resumes via ``--resume`` to byte-identical
  pooled output.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.engine import checkpoint, faults, supervise
from repro.engine.faults import FaultPlan, FaultSpec, parse_faults, use_faults
from repro.engine.replicate import replica_seeds, replicate_scenario
from repro.engine.supervise import (
    SupervisePolicy,
    SupervisedPool,
    supervised_map,
    use_supervision,
)
from repro.errors import (
    ConfigurationError,
    EngineError,
    MapTimeoutError,
    WorkerCrashError,
)
from repro.experiments.results import ExperimentRecord

TINY_DICTIONARY = dict(
    inbox_size=120,
    folds=2,
    corpus_ham=120,
    corpus_spam=120,
    attack_fractions=(0.0, 0.05),
)

TINY_STREAM = dict(
    ticks=3,
    ham_per_tick=20,
    spam_per_tick=20,
    attack_start_tick=2,
    test_size=60,
)


# Module-level so pool workers can pickle them by reference.
def _square_task(context, task):
    return context["offset"] + task * task


def _failing_task(context, task):
    if task == 3:
        raise ValueError("task three exploded")
    return task


# ----------------------------------------------------------------------
# Parsing
# ----------------------------------------------------------------------


class TestParseFaults:
    def test_none_and_empty_mean_no_plan(self):
        assert parse_faults(None) is None
        assert parse_faults("") is None
        assert parse_faults("  ,  ") is None

    def test_single_clause_defaults(self):
        plan = parse_faults("crash")
        assert plan.specs == (FaultSpec("crash", 1.0),)
        assert plan.seed == 0

    def test_full_grammar(self):
        plan = parse_faults("crash:p=0.2,hang:p=0.05:s=0.5,seed=7")
        assert plan.seed == 7
        assert plan.specs[0] == FaultSpec("crash", 0.2)
        assert plan.specs[1] == FaultSpec("hang", 0.05, seconds=0.5)

    def test_shm_unlink_mode(self):
        plan = parse_faults("shm-unlink:p=0.5")
        assert plan.specs == (FaultSpec("shm-unlink", 0.5),)

    @pytest.mark.parametrize(
        "text",
        [
            "explode",  # unknown mode
            "crash:p=2",  # probability out of range
            "crash:q=0.5",  # unknown param
            "crash:p",  # missing value
            "crash:p=abc",  # non-numeric value
            "seed=x",  # bad seed
            "hang:s=-1",  # negative stall
        ],
    )
    def test_junk_rejected(self, text):
        with pytest.raises(ConfigurationError):
            parse_faults(text)


class TestFaultPlan:
    def test_decisions_are_deterministic(self):
        plan = FaultPlan((FaultSpec("crash", 0.5),), seed=3)
        draws = [plan.decide("worker-chunk", f"k{i}") for i in range(64)]
        assert draws == [plan.decide("worker-chunk", f"k{i}") for i in range(64)]
        fired = sum(1 for draw in draws if draw is not None)
        assert 0 < fired < 64  # p=0.5 over 64 keys: both outcomes occur

    def test_seed_changes_decisions(self):
        keys = [f"k{i}" for i in range(64)]

        def fired(seed):
            plan = FaultPlan((FaultSpec("crash", 0.5),), seed=seed)
            return [plan.decide("worker-chunk", key) is not None for key in keys]

        assert fired(0) != fired(1)

    def test_site_gating(self):
        plan = FaultPlan((FaultSpec("shm-unlink", 1.0),))
        assert plan.decide("worker-chunk", "k") is None
        assert plan.decide("shm-unlink", "k") is not None
        crash = FaultPlan((FaultSpec("crash", 1.0),))
        assert crash.decide("shm-unlink", "k") is None

    def test_bool_reflects_live_probability(self):
        assert not FaultPlan((FaultSpec("crash", 0.0),))
        assert FaultPlan((FaultSpec("crash", 0.1),))

    def test_inject_is_noop_outside_workers(self):
        # An injected crash in the parent would take the whole test
        # run with it; this call returning at all is the assertion.
        with use_faults(FaultPlan((FaultSpec("crash", 1.0),))):
            assert not faults.in_worker_process()
            faults.inject("worker-chunk", "any")

    def test_env_activation_and_cache(self, monkeypatch):
        monkeypatch.delenv(faults.FAULTS_ENV, raising=False)
        assert faults.active_plan() is None
        monkeypatch.setenv(faults.FAULTS_ENV, "crash:p=0.25")
        plan = faults.active_plan()
        assert plan.specs == (FaultSpec("crash", 0.25),)
        assert faults.active_plan() is plan  # cached per distinct value


# ----------------------------------------------------------------------
# Policy resolution
# ----------------------------------------------------------------------


class TestPolicyResolution:
    def test_inactive_by_default(self, monkeypatch):
        for var in ("REPRO_TIMEOUT", "REPRO_RETRIES", "REPRO_FAULTS"):
            monkeypatch.delenv(var, raising=False)
        assert supervise.current_policy() is None

    def test_faults_env_auto_activates(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "crash:p=0.1")
        monkeypatch.delenv("REPRO_RETRIES", raising=False)
        policy = supervise.current_policy()
        assert policy is not None
        assert policy.retries == supervise.DEFAULT_RETRIES

    def test_env_knobs(self, monkeypatch):
        monkeypatch.setenv("REPRO_TIMEOUT", "2.5")
        monkeypatch.setenv("REPRO_RETRIES", "4")
        monkeypatch.setenv("REPRO_DEGRADE", "0")
        policy = supervise.current_policy()
        assert policy == SupervisePolicy(timeout=2.5, retries=4, degrade=False)

    def test_thread_local_override_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "crash:p=0.1")
        with use_supervision(None):
            assert supervise.current_policy() is None
        explicit = SupervisePolicy(retries=0)
        with use_supervision(explicit):
            assert supervise.current_policy() is explicit
        assert supervise.current_policy() is not None  # env default restored

    def test_invalid_policy_rejected(self):
        with pytest.raises(EngineError):
            SupervisePolicy(timeout=0)
        with pytest.raises(EngineError):
            SupervisePolicy(retries=-1)


# ----------------------------------------------------------------------
# The supervised pool: recovery ladder
# ----------------------------------------------------------------------


class TestSupervisedPool:
    def test_clean_run_matches_unsupervised(self):
        tasks = list(range(23))
        policy = SupervisePolicy(timeout=120.0, retries=2)
        # use_faults(None): stay clean even when the CI leg exports
        # REPRO_FAULTS around this whole file.
        with use_faults(None), SupervisedPool(3, policy=policy) as pool:
            results = pool.run(_square_task, {"offset": 5}, tasks)
            stats = pool.stats.as_dict()
        assert results == [5 + task * task for task in tasks]
        assert all(count == 0 for count in stats.values())

    def test_certain_crash_degrades_to_correct_results(self):
        with use_faults(FaultPlan((FaultSpec("crash", 1.0),))):
            policy = SupervisePolicy(retries=1, degrade=True)
            with SupervisedPool(2, policy=policy) as pool:
                results = pool.run(_square_task, {"offset": 3}, list(range(8)))
                stats = pool.stats.as_dict()
        assert results == [3 + task * task for task in range(8)]
        assert stats["crashes"] >= 1
        assert stats["respawns"] >= 1
        assert stats["degraded_chunks"] >= 1

    def test_certain_crash_without_degrade_raises_with_provenance(self):
        with use_faults(FaultPlan((FaultSpec("crash", 1.0),))):
            policy = SupervisePolicy(retries=1, degrade=False)
            with SupervisedPool(2, policy=policy) as pool:
                with pytest.raises(WorkerCrashError) as excinfo:
                    pool.run(_square_task, {"offset": 0}, list(range(8)))
        error = excinfo.value
        assert error.attempts == 2  # initial try + 1 retry
        assert error.chunk_starts  # the unfinished offsets survive
        assert "_square_task" in error.provenance

    def test_partial_crash_retries_only_unfinished_chunks(self):
        # seed=1 fires at least one crash on attempt 0 and none on
        # attempt 1 for this map shape, so the retry completes without
        # ever degrading — the accounting path, not the fallback path.
        with use_faults(FaultPlan((FaultSpec("crash", 0.08),), seed=1)):
            policy = SupervisePolicy(retries=3, degrade=False)
            with SupervisedPool(2, policy=policy) as pool:
                results = pool.run(_square_task, {"offset": 3}, list(range(16)))
                stats = pool.stats.as_dict()
        assert results == [3 + task * task for task in range(16)]
        assert stats["crashes"] >= 1
        assert stats["retried_chunks"] >= 1
        assert stats["degraded_chunks"] == 0

    def test_hang_past_deadline_raises_timeout_without_degrade(self):
        with use_faults(FaultPlan((FaultSpec("hang", 1.0, seconds=30.0),))):
            policy = SupervisePolicy(timeout=0.5, retries=0, degrade=False)
            with SupervisedPool(2, policy=policy) as pool:
                with pytest.raises(MapTimeoutError) as excinfo:
                    pool.run(_square_task, {"offset": 0}, list(range(4)))
        assert "deadline" in str(excinfo.value)

    def test_hang_past_deadline_degrades_to_correct_results(self):
        with use_faults(FaultPlan((FaultSpec("hang", 1.0, seconds=30.0),))):
            policy = SupervisePolicy(timeout=0.5, retries=0, degrade=True)
            with SupervisedPool(2, policy=policy) as pool:
                results = pool.run(_square_task, {"offset": 1}, list(range(4)))
                stats = pool.stats.as_dict()
        assert results == [1 + task * task for task in range(4)]
        assert stats["timeouts"] >= 1
        assert stats["degraded_chunks"] >= 1

    def test_app_exception_propagates_unretried(self):
        policy = SupervisePolicy(retries=5, degrade=True)
        with use_faults(None), SupervisedPool(2, policy=policy) as pool:
            with pytest.raises(ValueError, match="task three exploded"):
                pool.run(_failing_task, None, list(range(6)))
            stats = pool.stats.as_dict()
            # A deterministic failure consumed no retry budget...
            assert stats["retried_chunks"] == 0
            assert stats["degraded_chunks"] == 0
            # ...and the pool survives to serve the next map.
            assert pool.run(_square_task, {"offset": 0}, [2, 4]) == [4, 16]

    def test_pool_survives_recovery_and_serves_next_map(self):
        crash_all = FaultPlan((FaultSpec("crash", 1.0),))
        policy = SupervisePolicy(retries=0, degrade=True)
        with use_faults(None), SupervisedPool(2, policy=policy) as pool:
            with use_faults(crash_all):
                degraded = pool.run(_square_task, {"offset": 0}, list(range(6)))
            # Faults gone: the respawned workers serve a clean map.
            clean = pool.run(_square_task, {"offset": 0}, list(range(6)))
        assert degraded == clean == [task * task for task in range(6)]

    def test_supervised_map_inline_below_parallel_threshold(self):
        policy = SupervisePolicy(retries=0)
        assert supervised_map(_square_task, {"offset": 0}, [3], 8, policy) == [9]
        assert supervised_map(_square_task, {"offset": 0}, [], 8, policy) == []

    def test_supervised_map_parallel_matches_inline(self):
        tasks = list(range(10))
        inline = [_square_task({"offset": 2}, task) for task in tasks]
        policy = SupervisePolicy(retries=1)
        with use_faults(None):
            pooled = supervised_map(_square_task, {"offset": 2}, tasks, 2, policy)
        assert pooled == inline


# ----------------------------------------------------------------------
# Replica checkpoints
# ----------------------------------------------------------------------


class TestReplicaStore:
    def _record(self, seed):
        return ExperimentRecord(experiment="t", config={"seed": seed})

    def test_round_trip(self, tmp_path):
        store = checkpoint.ReplicaStore(tmp_path, "dictionary-vs-none")
        assert store.load(7) is None
        store.save(7, self._record(7))
        assert store.load(7) == self._record(7)
        assert store.completed_seeds() == [7]

    def test_wrong_scenario_or_seed_rejected(self, tmp_path):
        store = checkpoint.ReplicaStore(tmp_path, "dictionary-vs-none")
        store.save(7, self._record(7))
        other = checkpoint.ReplicaStore(tmp_path, "stream-clean-control")
        assert other.load(7) is None
        # A file renamed to another seed is detected by the envelope.
        os.rename(store.path(7), store.path(8))
        assert store.load(8) is None

    def test_torn_file_treated_as_absent(self, tmp_path):
        store = checkpoint.ReplicaStore(tmp_path, "s")
        store.path(3).write_text('{"format": "repro-replica', encoding="utf-8")
        assert store.load(3) is None
        assert store.completed_seeds() == []


# ----------------------------------------------------------------------
# Differential fault suite: byte-identical records under injection
# ----------------------------------------------------------------------

CRASHY = FaultPlan((FaultSpec("crash", 0.4),), seed=5)
HANGY = FaultPlan((FaultSpec("hang", 0.5, seconds=0.05),), seed=5)
UNLINKY = FaultPlan(
    (FaultSpec("shm-unlink", 0.5), FaultSpec("crash", 0.2)), seed=5
)
SUPERVISED = SupervisePolicy(timeout=60.0, retries=2, degrade=True)


def _record_bytes(record) -> bytes:
    return json.dumps(record.as_dict(), sort_keys=True).encode()


def _scenario_record(workers: int) -> ExperimentRecord:
    from repro.scenarios import get_scenario, run_scenario

    spec = get_scenario("dictionary-vs-none")
    config = spec.build_config(**TINY_DICTIONARY, seed=0, workers=workers)
    return run_scenario(spec, config=config).record


@pytest.mark.parametrize("kernel", ["python", "nd"])
@pytest.mark.parametrize("plan", [CRASHY, HANGY], ids=["crash", "hang"])
def test_scenario_records_identical_under_faults(kernel, plan, monkeypatch):
    if kernel == "nd":
        pytest.importorskip("numpy")
    monkeypatch.setenv("REPRO_KERNEL", kernel)
    with use_supervision(None), use_faults(None):
        clean = _record_bytes(_scenario_record(workers=2))
    with use_supervision(SUPERVISED), use_faults(plan):
        faulted = _record_bytes(_scenario_record(workers=2))
    assert faulted == clean


def test_scenario_records_identical_under_segment_loss(monkeypatch):
    # shm-unlink only matters on the kernel that ships segments.
    pytest.importorskip("numpy")
    monkeypatch.setenv("REPRO_KERNEL", "nd")
    with use_supervision(None), use_faults(None):
        clean = _record_bytes(_scenario_record(workers=2))
    with use_supervision(SUPERVISED), use_faults(UNLINKY):
        faulted = _record_bytes(_scenario_record(workers=2))
    assert faulted == clean


@pytest.mark.parametrize("kernel", ["python", "nd"])
def test_replicate_records_identical_under_faults(kernel, monkeypatch):
    if kernel == "nd":
        pytest.importorskip("numpy")
    monkeypatch.setenv("REPRO_KERNEL", kernel)

    def pooled():
        return _record_bytes(
            replicate_scenario(
                "dictionary-vs-none",
                seeds=2,
                overrides=TINY_DICTIONARY,
                workers=2,
            )
        )

    with use_supervision(None), use_faults(None):
        clean = pooled()
    with use_supervision(SUPERVISED), use_faults(CRASHY):
        faulted = pooled()
    assert faulted == clean


def test_stream_replicate_identical_under_faults(monkeypatch):
    # Streams ship whole-stream tasks through the shared pool; the
    # stream-task injection site fires per replica seed.
    monkeypatch.setenv("REPRO_KERNEL", "python")

    def pooled():
        return _record_bytes(
            replicate_scenario(
                "stream-clean-control",
                seeds=2,
                overrides=TINY_STREAM,
                workers=2,
            )
        )

    with use_supervision(None), use_faults(None):
        clean = pooled()
    with use_supervision(SUPERVISED), use_faults(CRASHY):
        faulted = pooled()
    assert faulted == clean


# ----------------------------------------------------------------------
# Checkpoint / resume
# ----------------------------------------------------------------------


class TestResume:
    def test_resume_skips_completed_replicas(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "python")
        kwargs = dict(seeds=2, overrides=TINY_DICTIONARY, workers=1)
        full = replicate_scenario(
            "dictionary-vs-none", checkpoint_dir=str(tmp_path), **kwargs
        )
        # Second run must not recompute anything: poison run_scenario.
        import repro.scenarios

        def explode(*args, **kw):  # pragma: no cover - failure mode
            raise AssertionError("resume recomputed a completed replica")

        monkeypatch.setattr(repro.scenarios, "run_scenario", explode)
        resumed = replicate_scenario(
            "dictionary-vs-none", checkpoint_dir=str(tmp_path), **kwargs
        )
        assert _record_bytes(resumed) == _record_bytes(full)

    def test_partial_checkpoints_complete_to_identical_bytes(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_KERNEL", "python")
        kwargs = dict(seeds=2, overrides=TINY_DICTIONARY, workers=1)
        full = replicate_scenario("dictionary-vs-none", **kwargs)
        # Pre-seed the store with replica 0 only; the resumed run must
        # compute replica 1 and pool to the uninterrupted bytes.
        store = checkpoint.ReplicaStore(tmp_path, "dictionary-vs-none")
        seeds = replica_seeds(0, 2)
        store.save(seeds[0], full.replicas[0])
        resumed = replicate_scenario(
            "dictionary-vs-none", checkpoint_dir=str(tmp_path), **kwargs
        )
        assert _record_bytes(resumed) == _record_bytes(full)
        assert store.completed_seeds() == sorted(seeds)


def _replicate_command(out: Path, resume: Path) -> list[str]:
    command = [
        sys.executable,
        "-m",
        "repro",
        "replicate",
        "dictionary-vs-none",
        "--seeds",
        "3",
        "--workers",
        "2",
        "--resume",
        str(resume),
        "--out",
        str(out),
    ]
    for key, value in TINY_DICTIONARY.items():
        command += ["--set", f"{key}={value}"]
    return command


@pytest.mark.slow
def test_sigkill_mid_replicate_resumes_to_identical_bytes(tmp_path):
    """SIGKILL a replication mid-flight; ``--resume`` must reproduce
    the uninterrupted output byte-for-byte."""
    env = dict(os.environ)
    env["PYTHONPATH"] = "src"
    env.pop("REPRO_FAULTS", None)
    # The uninterrupted reference.
    reference = tmp_path / "reference.json"
    done = subprocess.run(
        _replicate_command(reference, tmp_path / "ckpt-reference"),
        cwd=Path(__file__).resolve().parent.parent,
        env=env,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert done.returncode == 0, done.stderr
    # The victim: killed as soon as its first replica checkpoints.
    out = tmp_path / "resumed.json"
    ckpt = tmp_path / "ckpt"
    victim = subprocess.Popen(
        _replicate_command(out, ckpt),
        cwd=Path(__file__).resolve().parent.parent,
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    try:
        deadline = time.monotonic() + 300
        while time.monotonic() < deadline and victim.poll() is None:
            if list(ckpt.glob("*.json")):
                break
            time.sleep(0.05)
        if victim.poll() is None:
            victim.send_signal(signal.SIGKILL)
        victim.wait(timeout=60)
    finally:
        if victim.poll() is None:  # pragma: no cover - cleanup
            victim.kill()
    # Resume: loads the surviving checkpoints, runs the rest.
    resumed = subprocess.run(
        _replicate_command(out, ckpt),
        cwd=Path(__file__).resolve().parent.parent,
        env=env,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert resumed.returncode == 0, resumed.stderr
    assert out.read_bytes() == reference.read_bytes()
