"""Tests for the SpamFilter facade and threshold logic."""

from __future__ import annotations

import pytest

from repro.spambayes.filter import ClassifiedMessage, Label, SpamFilter
from repro.spambayes.message import Email
from repro.spambayes.options import ClassifierOptions


def train_toy(spam_filter: SpamFilter, repetitions: int = 15) -> None:
    for i in range(repetitions):
        spam_filter.train(
            Email.build(body="cheap pills winner lottery cash", msgid=f"s{i}"), True
        )
        spam_filter.train(
            Email.build(body="project meeting budget review notes", msgid=f"h{i}"), False
        )


class TestThresholds:
    def test_label_boundaries_inclusive(self):
        spam_filter = SpamFilter()
        assert spam_filter.label_for_score(0.15) is Label.HAM
        assert spam_filter.label_for_score(0.150001) is Label.UNSURE
        assert spam_filter.label_for_score(0.9) is Label.UNSURE
        assert spam_filter.label_for_score(0.900001) is Label.SPAM
        assert spam_filter.label_for_score(0.0) is Label.HAM
        assert spam_filter.label_for_score(1.0) is Label.SPAM

    def test_paper_defaults(self):
        spam_filter = SpamFilter()
        assert spam_filter.ham_cutoff == 0.15
        assert spam_filter.spam_cutoff == 0.90

    def test_set_thresholds_preserves_learning(self):
        spam_filter = SpamFilter()
        train_toy(spam_filter)
        score_before = spam_filter.score(Email.build(body="cheap pills"))
        spam_filter.set_thresholds(0.4, 0.6)
        assert spam_filter.ham_cutoff == 0.4
        assert spam_filter.score(Email.build(body="cheap pills")) == score_before

    def test_custom_options(self):
        options = ClassifierOptions(ham_cutoff=0.2, spam_cutoff=0.8)
        spam_filter = SpamFilter(options=options)
        assert spam_filter.label_for_score(0.85) is Label.SPAM


class TestClassification:
    def test_three_way_labels(self):
        spam_filter = SpamFilter()
        train_toy(spam_filter)
        assert spam_filter.classify(Email.build(body="cheap pills lottery")).label is Label.SPAM
        assert spam_filter.classify(Email.build(body="project meeting notes")).label is Label.HAM
        assert spam_filter.classify(Email.build(body="unrelated gibberish words")).label is Label.UNSURE

    def test_evidence_returned_on_request(self):
        spam_filter = SpamFilter()
        train_toy(spam_filter)
        result = spam_filter.classify(Email.build(body="cheap pills"), with_evidence=True)
        assert result.evidence
        assert all(0.0 <= ts.spam_prob <= 1.0 for ts in result.evidence)
        tokens = {ts.token for ts in result.evidence}
        assert "cheap" in tokens

    def test_no_evidence_by_default(self):
        spam_filter = SpamFilter()
        train_toy(spam_filter)
        assert spam_filter.classify(Email.build(body="cheap")).evidence == ()

    def test_is_filtered_property(self):
        assert not ClassifiedMessage(Label.HAM, 0.01).is_filtered
        assert ClassifiedMessage(Label.UNSURE, 0.5).is_filtered
        assert ClassifiedMessage(Label.SPAM, 0.99).is_filtered

    def test_classify_tokens_matches_classify(self):
        spam_filter = SpamFilter()
        train_toy(spam_filter)
        email = Email.build(body="cheap meeting pills", subject="hello")
        direct = spam_filter.classify(email)
        via_tokens = spam_filter.classify_tokens(spam_filter.tokenizer.tokenize(email))
        assert direct.score == via_tokens.score
        assert direct.label is via_tokens.label


class TestTrainUntrain:
    def test_untrain_reverses_train(self):
        spam_filter = SpamFilter()
        train_toy(spam_filter)
        email = Email.build(body="brand new words here", msgid="x")
        probe = Email.build(body="brand new words")
        score_before = spam_filter.score(probe)
        spam_filter.train(email, True)
        assert spam_filter.score(probe) != score_before
        spam_filter.untrain(email, True)
        assert spam_filter.score(probe) == score_before

    def test_train_many_counts(self):
        spam_filter = SpamFilter()
        emails = [Email.build(body=f"word{i} filler text", msgid=str(i)) for i in range(5)]
        assert spam_filter.train_many(emails, True) == 5
        assert spam_filter.classifier.nspam == 5

    def test_copy_independent(self):
        spam_filter = SpamFilter()
        train_toy(spam_filter)
        clone = spam_filter.copy()
        clone.train(Email.build(body="extra spam words", msgid="e"), True)
        assert clone.classifier.nspam == spam_filter.classifier.nspam + 1
