"""Tests for the focused attack and its knowledge model."""

from __future__ import annotations

import pytest

from repro.attacks.focused import FocusedAttack
from repro.attacks.payload import HeaderPolicy
from repro.errors import AttackError
from repro.rng import SeedSpawner
from repro.spambayes.message import Email
from repro.spambayes.tokenizer import DEFAULT_TOKENIZER


def make_target(word_count: int = 40) -> Email:
    body = " ".join(f"tgt{i:03d}" for i in range(word_count))
    return Email.build(body=body, subject="bid proposal", msgid="target-1")


def spam_pool(size: int = 5) -> list[Email]:
    return [
        Email.build(body="spam body", sender=f"promo{i}@junk{i}.biz", subject=f"deal {i}",
                    msgid=f"pool-{i}")
        for i in range(size)
    ]


class TestConstruction:
    def test_invalid_probability_rejected(self):
        with pytest.raises(AttackError):
            FocusedAttack(make_target(), guess_probability=1.5)
        with pytest.raises(AttackError):
            FocusedAttack(make_target(), guess_probability=-0.1)

    def test_empty_target_rejected(self):
        with pytest.raises(AttackError):
            FocusedAttack(Email.build(body=""), guess_probability=0.5)

    def test_taxonomy_targeted(self):
        attack = FocusedAttack(make_target())
        assert attack.taxonomy.specificity.value == "targeted"

    def test_header_policy_depends_on_pool(self):
        assert FocusedAttack(make_target()).header_policy is HeaderPolicy.EMPTY
        assert (
            FocusedAttack(make_target(), header_pool=spam_pool()).header_policy
            is HeaderPolicy.RANDOM_SPAM
        )

    def test_target_tokens_are_body_only(self):
        attack = FocusedAttack(make_target())
        assert all(not token.startswith("subject:") for token in attack.target_tokens)


class TestKnowledge:
    def test_full_knowledge_guesses_everything(self):
        attack = FocusedAttack(make_target(), guess_probability=1.0)
        knowledge = attack.draw_knowledge(SeedSpawner(1).rng("k"))
        assert knowledge.guessed_tokens == knowledge.target_tokens
        assert knowledge.guessed_fraction == 1.0

    def test_zero_knowledge_guesses_nothing(self):
        attack = FocusedAttack(make_target(), guess_probability=0.0)
        knowledge = attack.draw_knowledge(SeedSpawner(1).rng("k"))
        assert knowledge.guessed_tokens == frozenset()

    def test_partial_knowledge_near_p(self):
        attack = FocusedAttack(make_target(200), guess_probability=0.5)
        knowledge = attack.draw_knowledge(SeedSpawner(1).rng("k"))
        assert 0.35 < knowledge.guessed_fraction < 0.65

    def test_guessed_subset_of_target(self):
        attack = FocusedAttack(make_target(), guess_probability=0.3)
        knowledge = attack.draw_knowledge(SeedSpawner(2).rng("k"))
        assert knowledge.guessed_tokens <= knowledge.target_tokens


class TestGenerate:
    def test_without_pool_single_group(self):
        attack = FocusedAttack(make_target(), guess_probability=1.0)
        batch = attack.generate(5, SeedSpawner(1).rng("g"))
        assert batch.message_count == 5
        assert len(batch.groups) == 1

    def test_with_pool_one_group_per_email(self):
        attack = FocusedAttack(make_target(), guess_probability=1.0, header_pool=spam_pool())
        batch = attack.generate(5, SeedSpawner(1).rng("g"))
        assert batch.message_count == 5
        assert len(batch.groups) == 5
        for group in batch.groups:
            assert group.header_tokens
            assert group.header_source is not None

    def test_shared_guess_across_emails(self):
        attack = FocusedAttack(make_target(), guess_probability=0.5, header_pool=spam_pool())
        batch = attack.generate(4, SeedSpawner(3).rng("g"))
        payloads = {group.tokens for group in batch.groups}
        assert len(payloads) == 1  # one knowledge draw per attack

    def test_header_tokens_match_source(self):
        pool = spam_pool(1)
        attack = FocusedAttack(make_target(), guess_probability=1.0, header_pool=pool)
        batch = attack.generate(1, SeedSpawner(1).rng("g"))
        expected = frozenset(DEFAULT_TOKENIZER.tokenize_headers(pool[0]))
        assert batch.groups[0].header_tokens == expected

    def test_extra_words_included(self):
        attack = FocusedAttack(
            make_target(), guess_probability=1.0, extra_words=("competitorco",)
        )
        batch = attack.generate(1, SeedSpawner(1).rng("g"))
        assert "competitorco" in batch.groups[0].tokens

    def test_zero_count(self):
        attack = FocusedAttack(make_target())
        assert attack.generate(0, SeedSpawner(1).rng("g")).message_count == 0

    def test_negative_count_rejected(self):
        with pytest.raises(AttackError):
            FocusedAttack(make_target()).generate(-2, SeedSpawner(1).rng("g"))

    def test_zero_probability_headerless_yields_empty_batch(self):
        attack = FocusedAttack(make_target(), guess_probability=0.0)
        batch = attack.generate(3, SeedSpawner(1).rng("g"))
        assert batch.message_count == 0
