"""Tests for the email generator."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.corpus.generator import EmailGenerator, GeneratorConfig


@pytest.fixture(scope="module")
def generator(request) -> EmailGenerator:
    from repro.corpus.vocabulary import TINY_PROFILE, Vocabulary

    vocabulary = Vocabulary.build(TINY_PROFILE, seed=42)
    return EmailGenerator(vocabulary, seed=11)


class TestConfigValidation:
    def test_bad_probabilities(self):
        with pytest.raises(ConfigurationError):
            GeneratorConfig(spam_url_probability=1.5)
        with pytest.raises(ConfigurationError):
            GeneratorConfig(spam_money_probability=-0.1)

    def test_bad_subject_tokens(self):
        with pytest.raises(ConfigurationError):
            GeneratorConfig(subject_tokens=(5, 2))
        with pytest.raises(ConfigurationError):
            GeneratorConfig(subject_tokens=(0, 3))


class TestHamEmails:
    def test_deterministic_by_index(self, generator):
        assert generator.ham_email(3).as_text() == generator.ham_email(3).as_text()

    def test_distinct_indices_distinct_messages(self, generator):
        assert generator.ham_email(0).body != generator.ham_email(1).body

    def test_msgid_format(self, generator):
        assert generator.ham_email(12).msgid == "ham-000012"

    def test_standard_headers_present(self, generator):
        email = generator.ham_email(0)
        assert email.get_header("From")
        assert email.get_header("To") == GeneratorConfig().victim_address
        assert email.get_header("Subject")
        assert email.get_header("Date")
        assert email.get_header("Message-ID")
        assert email.get_header("X-Mailer")

    def test_sender_uses_ham_domains(self, generator):
        domains = GeneratorConfig().ham_domains
        for index in range(10):
            sender = generator.ham_email(index).sender
            assert any(sender.endswith(domain) for domain in domains)

    def test_bodies_wrapped(self, generator):
        email = generator.ham_email(1)
        assert all(len(line) <= 80 for line in email.body.split("\n"))


class TestSpamEmails:
    def test_msgid_format(self, generator):
        assert generator.spam_email(7).msgid == "spam-000007"

    def test_spam_senders_not_corporate(self, generator):
        ham_domains = GeneratorConfig().ham_domains
        for index in range(10):
            sender = generator.spam_email(index).sender
            assert not any(sender.endswith(domain) for domain in ham_domains)

    def test_some_spam_has_urls(self, generator):
        bodies = [generator.spam_email(i).body for i in range(30)]
        assert any("http://" in body for body in bodies)

    def test_some_spam_has_money(self, generator):
        bodies = [generator.spam_email(i).body for i in range(30)]
        assert any("$" in body for body in bodies)

    def test_no_xmailer_header(self, generator):
        assert generator.spam_email(0).get_header("X-Mailer") is None


class TestCrossGeneratorDeterminism:
    def test_same_seed_same_output(self, generator):
        from repro.corpus.vocabulary import TINY_PROFILE, Vocabulary

        other = EmailGenerator(Vocabulary.build(TINY_PROFILE, seed=42), seed=11)
        assert other.ham_email(5).as_text() == generator.ham_email(5).as_text()
        assert other.spam_email(5).as_text() == generator.spam_email(5).as_text()

    def test_different_seed_different_output(self, generator):
        from repro.corpus.vocabulary import TINY_PROFILE, Vocabulary

        other = EmailGenerator(Vocabulary.build(TINY_PROFILE, seed=42), seed=12)
        assert other.ham_email(5).as_text() != generator.ham_email(5).as_text()
