"""Tests for the Exploratory good-word attacks (taxonomy extension)."""

from __future__ import annotations

import pytest

from repro.attacks.goodword import (
    CommonWordGoodWordAttack,
    GOODWORD_TAXONOMY,
    OracleGoodWordAttack,
)
from repro.attacks.taxonomy import Influence, SecurityViolation
from repro.errors import AttackError
from repro.rng import SeedSpawner
from repro.spambayes.classifier import Classifier
from repro.spambayes.filter import Label, SpamFilter
from repro.spambayes.message import Email


@pytest.fixture(scope="module")
def trained_filter() -> SpamFilter:
    spam_filter = SpamFilter()
    for i in range(30):
        spam_filter.train(
            Email.build(body="cheap pills lottery winner cash offer", msgid=f"s{i}"), True
        )
        spam_filter.train(
            Email.build(body="meeting agenda budget quarterly review notes", msgid=f"h{i}"),
            False,
        )
    return spam_filter


@pytest.fixture(scope="module")
def spam_email() -> Email:
    return Email.build(body="cheap pills lottery winner", msgid="victim-spam")


class TestTaxonomyPosition:
    def test_exploratory_integrity(self):
        assert GOODWORD_TAXONOMY.influence is Influence.EXPLORATORY
        assert GOODWORD_TAXONOMY.violation is SecurityViolation.INTEGRITY

    def test_attacks_report_it(self, trained_filter):
        common = CommonWordGoodWordAttack(["meeting"])
        oracle = OracleGoodWordAttack(trained_filter.classifier, ["meeting"])
        assert common.taxonomy is GOODWORD_TAXONOMY
        assert oracle.taxonomy is GOODWORD_TAXONOMY


class TestCommonWordAttack:
    def test_empty_source_rejected(self):
        with pytest.raises(AttackError):
            CommonWordGoodWordAttack([])

    def test_zero_padding_is_identity(self, spam_email):
        attack = CommonWordGoodWordAttack(["meeting", "agenda"])
        result = attack.pad(spam_email, 0)
        assert result.padded is spam_email
        assert result.word_cost == 0

    def test_negative_padding_rejected(self, spam_email):
        attack = CommonWordGoodWordAttack(["meeting"])
        with pytest.raises(AttackError):
            attack.pad(spam_email, -1)

    def test_deterministic_head_take(self, spam_email):
        attack = CommonWordGoodWordAttack(["alpha", "beta", "gamma"])
        result = attack.pad(spam_email, 2)
        assert result.added_words == ("alpha", "beta")
        assert "alpha" in result.padded.body
        assert result.padded.headers == spam_email.headers

    def test_rng_samples_from_head(self, spam_email):
        attack = CommonWordGoodWordAttack([f"w{i}" for i in range(100)])
        result = attack.pad(spam_email, 5, SeedSpawner(1).rng("pad"))
        assert len(result.added_words) == 5
        assert set(result.added_words) <= {f"w{i}" for i in range(20)}

    def test_padding_lowers_score(self, trained_filter, spam_email):
        attack = CommonWordGoodWordAttack(
            ["meeting", "agenda", "budget", "quarterly", "review", "notes"]
        )
        tokenizer = trained_filter.tokenizer
        before = trained_filter.classifier.score(tokenizer.tokenize(spam_email))
        padded = attack.pad(spam_email, 6).padded
        after = trained_filter.classifier.score(tokenizer.tokenize(padded))
        assert after < before


class TestOracleAttack:
    def test_empty_candidates_rejected(self, trained_filter):
        with pytest.raises(AttackError):
            OracleGoodWordAttack(trained_filter.classifier, [])

    def test_ranks_hammiest_first(self, trained_filter):
        attack = OracleGoodWordAttack(
            trained_filter.classifier, ["cheap", "meeting", "unknownword"]
        )
        assert attack.ranked_words[0] == "meeting"
        assert attack.ranked_words[-1] == "cheap"

    def test_oracle_beats_blind_at_equal_budget(self, trained_filter, spam_email):
        """Query access buys efficiency — the Lowd & Meek point."""
        candidates = ["meeting", "agenda", "budget", "quarterly", "review",
                      "notes", "cheap", "offer", "unknown1", "unknown2"]
        oracle = OracleGoodWordAttack(trained_filter.classifier, candidates)
        blind = CommonWordGoodWordAttack(list(reversed(candidates)))
        tokenizer = trained_filter.tokenizer
        budget = 3
        oracle_score = trained_filter.classifier.score(
            tokenizer.tokenize(oracle.pad(spam_email, budget).padded)
        )
        blind_score = trained_filter.classifier.score(
            tokenizer.tokenize(blind.pad(spam_email, budget).padded)
        )
        assert oracle_score <= blind_score

    def test_words_to_evade_finds_minimum(self, trained_filter, spam_email):
        attack = OracleGoodWordAttack(
            trained_filter.classifier,
            ["meeting", "agenda", "budget", "quarterly", "review", "notes"],
        )
        result = attack.words_to_evade(spam_email, max_words=6, step=1)
        assert result is not None
        padded_label = trained_filter.classify(result.padded).label
        assert padded_label is not Label.SPAM

    def test_words_to_evade_budget_exhausted(self, trained_filter, spam_email):
        attack = OracleGoodWordAttack(trained_filter.classifier, ["cheap"])
        assert attack.words_to_evade(spam_email, max_words=1, step=1) is None
