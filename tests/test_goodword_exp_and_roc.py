"""Tests for the good-word experiment driver and ROC analysis."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.score_distributions import RocCurve, auc, roc_curve, score_histogram
from repro.errors import ExperimentError
from repro.experiments.goodword_exp import (
    GoodWordExperimentConfig,
    run_goodword_experiment,
)


class TestScoreHistogram:
    def test_bucketing(self):
        counts = score_histogram([0.0, 0.05, 0.15, 0.95, 1.0], bins=10)
        assert counts[0] == 2
        assert counts[1] == 1
        assert counts[9] == 2
        assert sum(counts) == 5

    def test_invalid_inputs(self):
        with pytest.raises(ExperimentError):
            score_histogram([0.5], bins=0)
        with pytest.raises(ExperimentError):
            score_histogram([1.5])


class TestRoc:
    def test_perfect_separation(self):
        curve = roc_curve([0.1, 0.2], [0.8, 0.9])
        assert curve.auc == pytest.approx(1.0)

    def test_no_separation(self):
        value = auc([0.5, 0.5], [0.5, 0.5])
        assert 0.4 <= value <= 0.6

    def test_inverted_scores(self):
        assert auc([0.9, 0.8], [0.1, 0.2]) == pytest.approx(0.0)

    def test_needs_both_classes(self):
        with pytest.raises(ExperimentError):
            roc_curve([], [0.5])
        with pytest.raises(ExperimentError):
            roc_curve([0.5], [])

    def test_curve_endpoints(self):
        curve = roc_curve([0.2, 0.4], [0.6, 0.8])
        assert curve.points[0] == (0.0, 0.0)
        assert curve.points[-1] == (1.0, 1.0)

    def test_curve_monotone(self):
        curve = roc_curve([0.1, 0.3, 0.5], [0.4, 0.6, 0.9])
        xs = [x for x, _ in curve.points]
        ys = [y for _, y in curve.points]
        assert xs == sorted(xs)
        assert ys == sorted(ys)

    @given(
        ham=st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=1, max_size=40),
        spam=st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=1, max_size=40),
    )
    @settings(max_examples=40)
    def test_auc_bounds_property(self, ham, spam):
        assert 0.0 <= auc(ham, spam) <= 1.0 + 1e-9


class TestGoodWordExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        config = GoodWordExperimentConfig(
            inbox_size=400,
            n_test_spam=25,
            word_budgets=(0, 20, 80, 300),
            corpus_ham=300,
            corpus_spam=400,
            seed=21,
        )
        return run_goodword_experiment(config)

    def test_models_present(self, result):
        assert set(result.evasion) == {"common-word (blind)", "oracle (Lowd-Meek)"}

    def test_zero_budget_evades_nothing(self, result):
        for points in result.evasion.values():
            assert points[0] == (0, 0.0)

    def test_monotone_in_budget(self, result):
        for points in result.evasion.values():
            rates = [rate for _, rate in points]
            assert rates == sorted(rates)

    def test_oracle_dominates_blind(self, result):
        oracle = dict(result.evasion["oracle (Lowd-Meek)"])
        blind = dict(result.evasion["common-word (blind)"])
        for budget, oracle_rate in oracle.items():
            assert oracle_rate >= blind[budget] - 1e-9

    def test_medians_recorded(self, result):
        assert set(result.median_words_to_evade) == set(result.evasion)

    def test_record_roundtrip(self, result):
        record = result.to_record()
        assert record.experiment == "goodword-evasion-cost"
        assert len(record.series) == 2

    def test_invalid_config(self):
        with pytest.raises(ExperimentError):
            GoodWordExperimentConfig(word_budgets=(10, 5))
        with pytest.raises(ExperimentError):
            GoodWordExperimentConfig(n_test_spam=0)
