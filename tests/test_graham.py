"""Tests for the Graham-combining classifier."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spambayes.graham import GRAHAM_OPTIONS, GrahamClassifier


def train_basic(classifier) -> None:
    for _ in range(10):
        classifier.learn({"cash", "shared"}, True)
        classifier.learn({"meeting", "shared"}, False)


class TestTokenProbability:
    def test_unknown_token_is_point_four(self):
        classifier = GrahamClassifier()
        train_basic(classifier)
        assert classifier.spam_prob("never-seen") == 0.4

    def test_clamping(self):
        classifier = GrahamClassifier()
        train_basic(classifier)
        assert classifier.spam_prob("cash") == 0.99
        assert classifier.spam_prob("meeting") == 0.01

    def test_ham_counts_double(self):
        classifier = GrahamClassifier()
        # Token in 1 of 2 spam and 1 of 2 ham: b=0.5, g=2*0.5=1.0 ->
        # p = 0.5/1.5 = 1/3.
        classifier.learn({"w"}, True)
        classifier.learn({"x"}, True)
        classifier.learn({"w"}, False)
        classifier.learn({"y"}, False)
        assert classifier.spam_prob("w") == pytest.approx(1 / 3)

    def test_empty_classifier_prior(self):
        assert GrahamClassifier().spam_prob("anything") == 0.4


class TestCombining:
    def test_fifteen_discriminators(self):
        assert GRAHAM_OPTIONS.max_discriminators == 15
        classifier = GrahamClassifier()
        spam_tokens = {f"s{i}" for i in range(40)}
        for _ in range(5):
            classifier.learn(spam_tokens, True)
            classifier.learn({"h"}, False)
        assert len(classifier.significant_tokens(spam_tokens)) == 15

    def test_scores_are_extreme(self):
        classifier = GrahamClassifier()
        train_basic(classifier)
        assert classifier.score({"cash"}) > 0.95
        assert classifier.score({"meeting"}) < 0.05

    def test_empty_message_is_half(self):
        classifier = GrahamClassifier()
        train_basic(classifier)
        assert classifier.score([]) == 0.5

    def test_long_clue_lists_do_not_underflow(self):
        classifier = GrahamClassifier(
            GRAHAM_OPTIONS.with_cutoffs(0.15, 0.9).__class__(
                unknown_word_prob=0.4,
                unknown_word_strength=0.0,
                minimum_prob_strength=0.0,
                max_discriminators=5_000,
            )
        )
        tokens = {f"s{i}" for i in range(2_000)}
        for _ in range(3):
            classifier.learn(tokens, True)
            classifier.learn({"h"}, False)
        assert classifier.score(tokens) == pytest.approx(1.0)

    @given(
        messages=st.lists(
            st.tuples(
                st.sets(st.sampled_from([f"t{i}" for i in range(20)]), min_size=1, max_size=6),
                st.booleans(),
            ),
            min_size=1,
            max_size=20,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_score_bounds_property(self, messages):
        classifier = GrahamClassifier()
        for tokens, is_spam in messages:
            classifier.learn(tokens, is_spam)
        assert 0.0 <= classifier.score({"t0", "t1", "t2"}) <= 1.0


class TestSharedMachinery:
    def test_learn_unlearn_roundtrip(self):
        classifier = GrahamClassifier()
        train_basic(classifier)
        before = classifier.score({"cash", "meeting"})
        classifier.learn({"cash", "new"}, True)
        classifier.unlearn({"cash", "new"}, True)
        assert classifier.score({"cash", "meeting"}) == before

    def test_copy_preserves_type(self):
        classifier = GrahamClassifier()
        train_basic(classifier)
        clone = classifier.copy()
        assert isinstance(clone, GrahamClassifier)
        assert clone.score({"cash"}) == classifier.score({"cash"})

    def test_dictionary_attack_poisons_graham_too(self, small_corpus):
        """The attack is combiner-independent: Graham scoring collapses
        under the same contamination."""
        from repro.attacks.dictionary import UsenetDictionaryAttack
        from repro.experiments.crossval import evaluate_dataset, train_grouped
        from repro.rng import SeedSpawner

        rng = SeedSpawner(77).rng("inbox")
        inbox = small_corpus.dataset.sample_inbox(600, 0.5, rng)
        inbox.tokenize_all()
        inbox_ids = {m.msgid for m in inbox}
        test = [m for m in small_corpus.dataset if m.msgid not in inbox_ids][:150]
        classifier = GrahamClassifier()
        train_grouped(classifier, inbox)
        clean = evaluate_dataset(classifier, test)
        attack = UsenetDictionaryAttack.from_vocabulary(small_corpus.vocabulary)
        attack.generate(30, SeedSpawner(78).rng("a")).train_into(classifier)
        poisoned = evaluate_dataset(classifier, test)
        assert clean.ham_as_spam_rate < 0.1
        assert poisoned.ham_as_spam_rate > clean.ham_as_spam_rate + 0.3
