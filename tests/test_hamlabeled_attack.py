"""Tests for the ham-labeled (Causative Integrity) attack extension."""

from __future__ import annotations

import pytest

from repro.attacks.hamlabeled import HAMLABELED_TAXONOMY, HamLabeledAttack
from repro.attacks.taxonomy import Influence, SecurityViolation
from repro.errors import AttackError
from repro.experiments.crossval import evaluate_dataset, train_grouped
from repro.rng import SeedSpawner
from repro.spambayes.classifier import Classifier


class TestBasics:
    def test_taxonomy_causative_integrity(self):
        assert HAMLABELED_TAXONOMY.influence is Influence.CAUSATIVE
        assert HAMLABELED_TAXONOMY.violation is SecurityViolation.INTEGRITY

    def test_empty_words_rejected(self):
        with pytest.raises(AttackError):
            HamLabeledAttack([])

    def test_negative_count_rejected(self):
        with pytest.raises(AttackError):
            HamLabeledAttack(["a"]).generate(-1, SeedSpawner(1).rng("x"))

    def test_batch_trains_as_ham(self):
        classifier = Classifier()
        classifier.learn({"seed"}, True)
        attack = HamLabeledAttack(["w1", "w2"])
        batch = attack.generate(5, SeedSpawner(1).rng("x"))
        batch.train_into(classifier)
        assert classifier.nham == 5
        assert classifier.nspam == 1
        assert classifier.word_info("w1").hamcount == 5
        batch.untrain_from(classifier)
        assert classifier.nham == 0
        assert classifier.word_info("w1") is None

    def test_from_vocabulary_targets_spam_words(self, tiny_vocabulary):
        attack = HamLabeledAttack.from_vocabulary(tiny_vocabulary)
        assert set(tiny_vocabulary.spam_shared) <= attack.tokens
        assert set(tiny_vocabulary.spam_unlisted) <= attack.tokens
        assert not (set(tiny_vocabulary.ham_topic) & attack.tokens)


class TestIntegrityDamage:
    def test_whitewashing_creates_false_negatives(self, small_corpus):
        """The paper's Section 2.2 conjecture, demonstrated: ham-labeled
        contamination lets spam through."""
        rng = SeedSpawner(61).rng("inbox")
        inbox = small_corpus.dataset.sample_inbox(600, 0.5, rng)
        inbox.tokenize_all()
        inbox_ids = {m.msgid for m in inbox}
        test = [m for m in small_corpus.dataset if m.msgid not in inbox_ids][:200]

        classifier = Classifier()
        train_grouped(classifier, inbox)
        clean = evaluate_dataset(classifier, test)

        attack = HamLabeledAttack.from_vocabulary(small_corpus.vocabulary)
        batch = attack.generate(60, SeedSpawner(62).rng("a"))  # ~10% control
        batch.train_into(classifier)
        poisoned = evaluate_dataset(classifier, test)

        # Spam detection degrades (false negatives / unsure rise) while
        # ham is *not* pushed toward spam (this is an Integrity attack).
        assert poisoned.spam_as_spam_rate < clean.spam_as_spam_rate
        assert poisoned.ham_as_spam_rate <= clean.ham_as_spam_rate + 0.02
