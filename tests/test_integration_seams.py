"""Tests for integration seams between components.

Covers combinations the per-module tests don't: alternative classifier
inside the SpamFilter facade, RONI warm-up in the retraining loop,
defended filters over Graham scoring, and chart rendering edge cases.
"""

from __future__ import annotations

import pytest

from repro.analysis.plots import ascii_bar_chart, ascii_line_chart, ascii_scatter
from repro.experiments.retraining import RetrainingConfig, run_retraining_simulation
from repro.rng import SeedSpawner
from repro.spambayes.filter import Label, SpamFilter
from repro.spambayes.graham import GrahamClassifier
from repro.spambayes.message import Email
from repro.spambayes.persistence import classifier_from_dict, classifier_to_dict


class TestGrahamInsideFilterFacade:
    @pytest.fixture()
    def graham_filter(self) -> SpamFilter:
        spam_filter = SpamFilter(classifier=GrahamClassifier())
        for i in range(15):
            spam_filter.train(
                Email.build(body="cheap pills lottery winner", msgid=f"s{i}"), True
            )
            spam_filter.train(
                Email.build(body="meeting agenda budget notes", msgid=f"h{i}"), False
            )
        return spam_filter

    def test_classification_works(self, graham_filter):
        assert graham_filter.classify(Email.build(body="cheap lottery")).label is Label.SPAM
        assert graham_filter.classify(Email.build(body="meeting notes")).label is Label.HAM

    def test_graham_options_flow_through(self, graham_filter):
        assert graham_filter.options.max_discriminators == 15
        assert graham_filter.options.unknown_word_prob == 0.4

    def test_set_thresholds_on_graham(self, graham_filter):
        graham_filter.set_thresholds(0.3, 0.7)
        assert graham_filter.ham_cutoff == 0.3
        # Thresholds moved without disturbing Graham scoring behaviour.
        assert graham_filter.classifier.spam_prob("never-seen") == 0.4

    def test_copy_keeps_subclass(self, graham_filter):
        clone = graham_filter.copy()
        assert isinstance(clone.classifier, GrahamClassifier)

    def test_graham_state_persists_via_dict(self, graham_filter):
        data = classifier_to_dict(graham_filter.classifier)
        # Base-class restore yields the same counts; scoring semantics
        # then depend on the class the caller rebuilds into.
        restored = classifier_from_dict(data)
        assert restored.nspam == graham_filter.classifier.nspam
        assert restored.word_info("cheap") == graham_filter.classifier.word_info("cheap")


@pytest.mark.slow
class TestRetrainingWarmup:
    def test_roni_without_history_trains_everything(self):
        """With the attack arriving before RONI has enough accepted
        history to calibrate (week 1), the gate must fail open and the
        attack trains — a documented limitation, not a crash."""
        config = RetrainingConfig(
            weeks=2,
            ham_per_week=20,
            spam_per_week=20,
            attack_start_week=1,
            attack_per_week=5,
            defense="roni",
            test_size=60,
            seed=23,
        )
        result = run_retraining_simulation(config)
        week1 = result.week(1)
        assert week1.attack_trained == week1.attack_sent
        assert week1.attack_rejected == 0

    def test_roni_calibrates_from_week_two(self):
        config = RetrainingConfig(
            weeks=3,
            ham_per_week=60,
            spam_per_week=60,
            attack_start_week=2,
            attack_per_week=5,
            defense="roni",
            test_size=60,
            seed=24,
        )
        result = run_retraining_simulation(config)
        assert result.week(2).attack_rejected == 5


class TestChartEdgeCases:
    def test_line_chart_single_point(self):
        chart = ascii_line_chart({"one": [(5.0, 0.5)]})
        assert "o=one" in chart

    def test_line_chart_flat_autorange(self):
        chart = ascii_line_chart({"flat": [(0, 3.0), (1, 3.0)]}, y_range=None)
        assert "flat" in chart

    def test_bar_chart_unknown_segment_uses_initial(self):
        chart = ascii_bar_chart({"g": {"custom": 1.0}})
        assert "c" in chart

    def test_scatter_extreme_points(self):
        chart = ascii_scatter([(0.0, 0.0, True), (1.0, 1.0, False)])
        assert "x" in chart
        assert "o" in chart

    def test_line_chart_many_series_cycles_markers(self):
        series = {f"s{i}": [(0, 0.1 * i), (1, 0.1 * i)] for i in range(10)}
        chart = ascii_line_chart(series)
        assert "legend" in chart
