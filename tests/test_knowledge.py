"""Tests for the Section 3.4 knowledge/optimal-attack framework."""

from __future__ import annotations

import pytest

from repro.attacks.knowledge import (
    EmpiricalHamDistribution,
    ExplicitTokenDistribution,
    TargetIndicatorDistribution,
    budgeted_attack,
    optimal_attack_tokens,
)
from repro.errors import AttackError
from repro.spambayes.message import Email


def ham_samples() -> list[Email]:
    return [
        Email.build(body="alpha beta gamma"),
        Email.build(body="alpha beta"),
        Email.build(body="alpha delta"),
        Email.build(body="alpha epsilon zeta"),
    ]


class TestEmpiricalDistribution:
    def test_document_frequencies(self):
        dist = EmpiricalHamDistribution(ham_samples())
        assert dist.probability("alpha") == 1.0
        assert dist.probability("beta") == 0.5
        assert dist.probability("delta") == 0.25
        assert dist.probability("unknown") == 0.0

    def test_ranked_words_descending(self):
        dist = EmpiricalHamDistribution(ham_samples())
        ranked = dist.ranked_words()
        probabilities = [p for _, p in ranked]
        assert probabilities == sorted(probabilities, reverse=True)
        assert ranked[0][0] == "alpha"

    def test_accepts_labeled_messages(self, tiny_corpus):
        dist = EmpiricalHamDistribution(tiny_corpus.dataset.ham[:10])
        assert dist.sample_size == 10
        assert len(dist) > 0

    def test_headers_excluded(self):
        emails = [Email.build(body="bodyword", subject="subjectword")]
        dist = EmpiricalHamDistribution(emails)
        assert dist.probability("bodyword") == 1.0
        assert dist.probability("subject:subjectword") == 0.0

    def test_empty_sample_rejected(self):
        with pytest.raises(AttackError):
            EmpiricalHamDistribution([])


class TestTargetIndicator:
    def test_indicator_values(self):
        dist = TargetIndicatorDistribution.from_email(Email.build(body="alpha beta"))
        assert dist.probability("alpha") == 1.0
        assert dist.probability("gamma") == 0.0

    def test_ranked_words_sorted(self):
        dist = TargetIndicatorDistribution.from_email(Email.build(body="zeta alpha"))
        assert [w for w, _ in dist.ranked_words()] == ["alpha", "zeta"]


class TestOptimalAttackTokens:
    def test_unbudgeted_takes_all_positive(self):
        dist = ExplicitTokenDistribution({"a": 0.9, "b": 0.1, "c": 0.0})
        assert optimal_attack_tokens(dist) == {"a", "b"}

    def test_budget_takes_top_k(self):
        dist = ExplicitTokenDistribution({"a": 0.9, "b": 0.5, "c": 0.1})
        assert optimal_attack_tokens(dist, budget=2) == {"a", "b"}

    def test_budget_tie_break_deterministic(self):
        dist = ExplicitTokenDistribution({"x": 0.5, "y": 0.5, "z": 0.5})
        assert optimal_attack_tokens(dist, budget=2) == {"x", "y"}

    def test_invalid_budget_rejected(self):
        dist = ExplicitTokenDistribution({"a": 1.0})
        with pytest.raises(AttackError):
            optimal_attack_tokens(dist, budget=0)

    def test_all_zero_distribution_rejected(self):
        with pytest.raises(AttackError):
            optimal_attack_tokens(ExplicitTokenDistribution({"a": 0.0}))

    def test_extremes_recover_paper_attacks(self):
        """Uniform knowledge -> dictionary; indicator -> focused."""
        universe = {f"w{i}": 1.0 for i in range(50)}
        dictionary_like = optimal_attack_tokens(ExplicitTokenDistribution(universe))
        assert dictionary_like == set(universe)

        target = Email.build(body="alpha beta gamma")
        focused_like = optimal_attack_tokens(TargetIndicatorDistribution.from_email(target))
        assert focused_like == {"alpha", "beta", "gamma"}


class TestBudgetedAttack:
    def test_wraps_as_dictionary_attack(self):
        dist = ExplicitTokenDistribution({"a": 0.9, "b": 0.5})
        attack = budgeted_attack(dist, budget=1, name="informed")
        assert attack.name == "informed"
        assert attack.tokens == {"a"}

    def test_better_informed_attack_covers_more_ham_mass(self):
        """An attacker with the true ham distribution beats a random
        subset of the same size at covering ham tokens — the premise of
        the Section 3.4 'constrained optimal' discussion."""
        samples = ham_samples()
        dist = EmpiricalHamDistribution(samples)
        informed = optimal_attack_tokens(dist, budget=2)
        # Top-2 by document frequency is {alpha, beta}; together they
        # cover more sample emails than any other 2-subset.
        coverage = sum(
            1 for email in samples
            if informed & set(email.body.split())
        )
        assert coverage == 4
