"""Tests for the Zipfian language models."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.errors import ConfigurationError
from repro.rng import SeedSpawner
from repro.corpus.language_model import (
    HamLanguageModel,
    MixtureModel,
    SpamLanguageModel,
    ZipfSampler,
)


class TestZipfSampler:
    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            ZipfSampler([])

    def test_negative_exponent_rejected(self):
        with pytest.raises(ConfigurationError):
            ZipfSampler(["a"], exponent=-1.0)

    def test_head_more_frequent_than_tail(self):
        sampler = ZipfSampler([f"w{i}" for i in range(100)], exponent=1.0)
        rng = SeedSpawner(1).rng("zipf")
        counts = Counter(sampler.sample(rng, 20_000))
        assert counts["w0"] > counts["w50"] > 0

    def test_probability_normalized(self):
        sampler = ZipfSampler(["a", "b", "c"], exponent=1.0)
        total = sum(sampler.probability(w) for w in ("a", "b", "c"))
        assert total == pytest.approx(1.0)

    def test_probability_of_unknown_word(self):
        assert ZipfSampler(["a"]).probability("zz") == 0.0

    def test_zero_count_sample(self):
        sampler = ZipfSampler(["a"])
        assert sampler.sample(SeedSpawner(1).rng("z"), 0) == []

    def test_exponent_zero_is_uniformish(self):
        sampler = ZipfSampler(["a", "b"], exponent=0.0)
        assert sampler.probability("a") == pytest.approx(sampler.probability("b"))


class TestMixtureModel:
    def _mixture(self) -> MixtureModel:
        return MixtureModel(
            [
                ("first", ZipfSampler(["a", "b"]), 0.75),
                ("second", ZipfSampler(["c"]), 0.25),
            ]
        )

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            MixtureModel([])

    def test_zero_weights_rejected(self):
        with pytest.raises(ConfigurationError):
            MixtureModel([("a", ZipfSampler(["x"]), 0.0)])

    def test_unigram_sums_to_one(self):
        mixture = self._mixture()
        total = sum(mixture.unigram_probability(w) for w in ("a", "b", "c"))
        assert total == pytest.approx(1.0)

    def test_component_weights_respected(self):
        mixture = self._mixture()
        first = mixture.unigram_probability("a") + mixture.unigram_probability("b")
        assert first == pytest.approx(0.75, abs=1e-9)

    def test_inclusion_probability_monotone_in_length(self):
        mixture = self._mixture()
        assert mixture.inclusion_probability("c", 10) < mixture.inclusion_probability("c", 100)

    def test_inclusion_probability_unknown_word(self):
        assert self._mixture().inclusion_probability("zz", 50) == 0.0

    def test_sampling_stays_in_vocabulary(self):
        mixture = self._mixture()
        rng = SeedSpawner(2).rng("mix")
        assert set(mixture.sample(rng, 500)) <= {"a", "b", "c"}


class TestLanguageModels:
    def test_ham_body_lengths_bounded(self, tiny_vocabulary):
        model = HamLanguageModel(tiny_vocabulary, topic_count=5)
        rng = SeedSpawner(3).rng("ham")
        for _ in range(20):
            tokens = model.sample_body_tokens(rng)
            assert 20 <= len(tokens) <= 600

    def test_spam_body_lengths_bounded(self, tiny_vocabulary):
        model = SpamLanguageModel(tiny_vocabulary)
        rng = SeedSpawner(3).rng("spam")
        for _ in range(20):
            tokens = model.sample_body_tokens(rng)
            assert 15 <= len(tokens) <= 500

    def test_invalid_topic_count(self, tiny_vocabulary):
        with pytest.raises(ConfigurationError):
            HamLanguageModel(tiny_vocabulary, topic_count=0)

    def test_ham_and_spam_vocabulary_diverge(self, tiny_vocabulary):
        """Spam text must hit obfuscated tokens ham never uses."""
        ham = HamLanguageModel(tiny_vocabulary, topic_count=5)
        spam = SpamLanguageModel(tiny_vocabulary)
        rng = SeedSpawner(4)
        ham_tokens = set()
        spam_tokens = set()
        ham_rng, spam_rng = rng.rng("h"), rng.rng("s")
        for _ in range(50):
            ham_tokens |= set(ham.sample_body_tokens(ham_rng))
            spam_tokens |= set(spam.sample_body_tokens(spam_rng))
        unlisted = set(tiny_vocabulary.spam_unlisted)
        assert len(spam_tokens & unlisted) > 5
        assert len(ham_tokens & unlisted) == 0

    def test_topic_windows_bias_content(self, tiny_vocabulary):
        """Same topic twice shares more jargon than different topics."""
        model = HamLanguageModel(tiny_vocabulary, topic_count=6)
        spawner = SeedSpawner(5)
        topic_words = set(tiny_vocabulary.ham_topic)
        same_a = set(model.sample_body_tokens(spawner.rng("a"), topic=2)) & topic_words
        same_b = set(model.sample_body_tokens(spawner.rng("b"), topic=2)) & topic_words
        other = set(model.sample_body_tokens(spawner.rng("c"), topic=5)) & topic_words
        assert len(same_a & same_b) > len(same_a & other)

    def test_deterministic_given_rng(self, tiny_vocabulary):
        model = HamLanguageModel(tiny_vocabulary, topic_count=5)
        a = model.sample_body_tokens(SeedSpawner(6).rng("x"))
        b = model.sample_body_tokens(SeedSpawner(6).rng("x"))
        assert a == b
