"""Tests for the Email message model."""

from __future__ import annotations

import pytest

from repro.errors import MessageParseError
from repro.spambayes.message import Email


class TestParsing:
    def test_headers_then_body(self):
        email = Email.from_text("Subject: hello\nFrom: a@b.com\n\nbody line one\nline two")
        assert email.subject == "hello"
        assert email.sender == "a@b.com"
        assert email.body == "body line one\nline two"

    def test_continuation_lines_fold(self):
        email = Email.from_text("Subject: part one\n  part two\n\nbody")
        assert email.subject == "part one part two"

    def test_continuation_before_header_rejected(self):
        with pytest.raises(MessageParseError):
            Email.from_text("  dangling continuation\n\nbody")

    def test_headerless_text_is_all_body(self):
        text = "just a plain note\nwith two lines"
        email = Email.from_text(text)
        assert email.headers == []
        assert email.body == text

    def test_malformed_header_after_valid_ones_rejected(self):
        with pytest.raises(MessageParseError):
            Email.from_text("Subject: ok\nnot a header line\n\nbody")

    def test_empty_body(self):
        email = Email.from_text("Subject: only headers\n\n")
        assert email.subject == "only headers"
        assert email.body == ""

    def test_msgid_carried(self):
        assert Email.from_text("hello", msgid="m-1").msgid == "m-1"


class TestHeaders:
    def test_get_header_case_insensitive(self):
        email = Email(body="", headers=[("SUBJect", "x")])
        assert email.get_header("subject") == "x"

    def test_get_header_default(self):
        assert Email(body="").get_header("missing", "dflt") == "dflt"

    def test_get_all_headers_preserves_order(self):
        email = Email(body="", headers=[("Received", "a"), ("X", "1"), ("Received", "b")])
        assert email.get_all_headers("received") == ["a", "b"]

    def test_with_headers_replaces_block(self):
        original = Email(body="b", headers=[("A", "1")], msgid="m")
        swapped = original.with_headers([("B", "2")])
        assert swapped.headers == [("B", "2")]
        assert swapped.body == "b"
        assert swapped.msgid == "m"
        assert original.headers == [("A", "1")]  # untouched


class TestBuildAndRoundTrip:
    def test_build_sets_standard_headers(self):
        email = Email.build(
            body="hi",
            subject="s",
            sender="from@x.com",
            recipient="to@y.com",
            extra_headers=[("X-Extra", "v")],
        )
        assert email.get_header("From") == "from@x.com"
        assert email.get_header("To") == "to@y.com"
        assert email.subject == "s"
        assert email.get_header("X-Extra") == "v"

    def test_as_text_round_trips(self):
        email = Email.build(body="line1\nline2", subject="s", sender="a@b.c", msgid="m1")
        parsed = Email.from_text(email.as_text(), msgid="m1")
        assert parsed.headers == email.headers
        assert parsed.body == email.body
        assert parsed.msgid == "m1"

    def test_round_trip_empty_headers(self):
        email = Email(body="only body")
        parsed = Email.from_text(email.as_text())
        # as_text emits a leading blank line for the empty header block,
        # which parses back to the same body.
        assert parsed.body == email.body
        assert parsed.headers == []
