"""Tests for the three-way confusion matrix."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.metrics import ConfusionCounts
from repro.spambayes.filter import Label


class TestRecording:
    def test_record_each_cell(self):
        counts = ConfusionCounts()
        counts.record(False, Label.HAM)
        counts.record(False, Label.UNSURE)
        counts.record(False, Label.SPAM)
        counts.record(True, Label.HAM)
        counts.record(True, Label.UNSURE)
        counts.record(True, Label.SPAM)
        assert counts.as_dict() == {
            "ham_as_ham": 1,
            "ham_as_unsure": 1,
            "ham_as_spam": 1,
            "spam_as_ham": 1,
            "spam_as_unsure": 1,
            "spam_as_spam": 1,
        }

    def test_merge(self):
        a = ConfusionCounts(ham_as_ham=2, spam_as_spam=3)
        b = ConfusionCounts(ham_as_ham=1, ham_as_spam=4)
        a.merge(b)
        assert a.ham_as_ham == 3
        assert a.ham_as_spam == 4
        assert a.spam_as_spam == 3

    def test_pooled(self):
        parts = [ConfusionCounts(ham_as_ham=1), ConfusionCounts(ham_as_unsure=2)]
        pooled = ConfusionCounts.pooled(parts)
        assert pooled.ham_total == 3

    def test_dict_roundtrip(self):
        counts = ConfusionCounts(ham_as_spam=5, spam_as_unsure=7)
        assert ConfusionCounts.from_dict(counts.as_dict()) == counts


class TestRates:
    def test_paper_rates(self):
        counts = ConfusionCounts(
            ham_as_ham=60, ham_as_unsure=30, ham_as_spam=10,
            spam_as_ham=5, spam_as_unsure=15, spam_as_spam=80,
        )
        assert counts.ham_as_spam_rate == pytest.approx(0.10)
        assert counts.ham_misclassified_rate == pytest.approx(0.40)
        assert counts.ham_as_unsure_rate == pytest.approx(0.30)
        assert counts.spam_as_spam_rate == pytest.approx(0.80)
        assert counts.spam_as_unsure_rate == pytest.approx(0.15)
        assert counts.spam_as_ham_rate == pytest.approx(0.05)
        assert counts.errors == 200 - 60 - 80

    def test_empty_rates_are_zero(self):
        counts = ConfusionCounts()
        assert counts.ham_as_spam_rate == 0.0
        assert counts.ham_misclassified_rate == 0.0
        assert counts.spam_as_spam_rate == 0.0


@given(
    cells=st.lists(
        st.tuples(st.booleans(), st.sampled_from(list(Label))), max_size=200
    )
)
@settings(max_examples=50)
def test_conservation_and_bounds(cells):
    counts = ConfusionCounts()
    for is_spam, label in cells:
        counts.record(is_spam, label)
    assert counts.total == len(cells)
    assert counts.ham_total + counts.spam_total == counts.total
    for rate in (
        counts.ham_as_spam_rate,
        counts.ham_misclassified_rate,
        counts.spam_as_spam_rate,
        counts.spam_as_unsure_rate,
        counts.spam_as_ham_rate,
    ):
        assert 0.0 <= rate <= 1.0
    assert counts.ham_as_spam_rate <= counts.ham_misclassified_rate
