"""Differential lockdown of the vectorized NumPy kernel.

The NumPy kernel (``repro.spambayes.ndkernel``) must be *bit-identical*
to the pure-Python core — exact ``==`` on every score, count and
serialized record, never ``approx``.  The pure core stays in the tree
as the executable oracle (the PR-2 ``reference.py`` pattern, one layer
up), and this suite drives both through:

* seeded randomized learn/unlearn/score/snapshot interleavings,
* every attack class (dictionary variants, informed, focused,
  ham-labeled, good-word evasion),
* both defenses (RONI and dynamic thresholds),
* worker counts 1 and 2 (private pools and the shared WorkerPool with
  the shared-memory corpus transport underneath),
* pinned ``PYTHONHASHSEED`` values in subprocesses.

Kernel selection is the ``REPRO_KERNEL`` environment variable, read at
classifier-construction time — so each arm of a comparison simply sets
the variable and runs the identical code path.
"""

from __future__ import annotations

import json
import os
import random
import subprocess
import sys
from contextlib import contextmanager
from pathlib import Path

import pytest

np = pytest.importorskip("numpy")

from repro.attacks.dictionary import OptimalDictionaryAttack
from repro.attacks.hamlabeled import HamLabeledAttack
from repro.attacks.goodword import OracleGoodWordAttack
from repro.attacks.variants import build_attack_variants
from repro.corpus.trec import TrecStyleCorpus
from repro.corpus.vocabulary import TINY_PROFILE
from repro.defenses.roni import RoniConfig, RoniDefense
from repro.defenses.threshold import DynamicThresholdDefense
from repro.engine.sweep import SweepSpec, run_attack_sweeps
from repro.errors import ConfigurationError, TrainingError
from repro.rng import SeedSpawner
from repro.spambayes import ndkernel
from repro.spambayes.classifier import Classifier
from repro.spambayes.ndkernel import NDClassifier
from repro.spambayes.persistence import classifier_to_dict
from repro.spambayes.token_table import TokenTable

SUITE_WORKERS = int(os.environ.get("REPRO_WORKERS", "1") or "1")


@contextmanager
def forced_kernel(name: str):
    """Pin ``REPRO_KERNEL`` for the duration of one comparison arm."""
    previous = os.environ.get(ndkernel.KERNEL_ENV)
    os.environ[ndkernel.KERNEL_ENV] = name
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop(ndkernel.KERNEL_ENV, None)
        else:
            os.environ[ndkernel.KERNEL_ENV] = previous


# ----------------------------------------------------------------------
# Randomized interleavings: the classifier-level gauntlet
# ----------------------------------------------------------------------


def _random_message(rng: random.Random, table: TokenTable):
    size = rng.randint(1, 40)
    tokens = {f"w{rng.randrange(400)}" for _ in range(size)}
    return table.encode_unique(tokens)


def _full_state(classifier: Classifier):
    return (
        classifier.nspam,
        classifier.nham,
        {
            token: (record.spamcount, record.hamcount)
            for token, record in (
                (t, classifier.word_info(t)) for t in classifier.iter_vocabulary()
            )
        },
    )


@pytest.mark.parametrize("seed", [3, 11, 29])
def test_randomized_interleavings_bit_identical(seed):
    """Hundreds of random learn/unlearn/score/snapshot steps, exact ==.

    One shared append-only table feeds both kernels the *same* ID
    arrays (exactly how production shares encodings across kernels),
    and after every scoring step the floats must match to the last bit.
    """
    rng = random.Random(seed)
    table = TokenTable()
    pure = Classifier(table=table)
    vect = NDClassifier(table=table)
    messages = [_random_message(rng, table) for _ in range(60)]
    learned: list[tuple[object, bool, int]] = []
    snapshots = None

    for step in range(300):
        op = rng.randrange(10)
        if op <= 3:  # learn
            ids = rng.choice(messages)
            is_spam = rng.random() < 0.5
            count = rng.choice((1, 1, 1, 3))
            pure.learn_ids_repeated(ids, is_spam, count)
            vect.learn_ids_repeated(ids, is_spam, count)
            learned.append((ids, is_spam, count))
        elif op <= 5 and learned:  # unlearn something actually learned
            # While a snapshot is pending, only entries learned after it
            # are fair game — restore() will resurrect anything older,
            # and the bookkeeping list must stay in sync with state.
            floor = snapshots[2] if snapshots is not None else 0
            if floor >= len(learned):
                continue
            index = rng.randrange(floor, len(learned))
            ids, is_spam, count = learned.pop(index)
            pure.unlearn_ids_repeated(ids, is_spam, count)
            vect.unlearn_ids_repeated(ids, is_spam, count)
        elif op == 6:  # point score
            ids = rng.choice(messages)
            assert pure.score_ids(ids) == vect.score_ids(ids)
        elif op == 7:  # bulk score
            batch = rng.sample(messages, rng.randint(1, 20))
            assert pure.score_many_ids(batch) == vect.score_many_ids(batch)
        elif op == 8 and snapshots is None and learned:  # snapshot
            snapshots = (pure.snapshot(), vect.snapshot(), len(learned))
        elif op == 9 and snapshots is not None:  # restore
            pure_snap, vect_snap, depth = snapshots
            pure.restore(pure_snap)
            vect.restore(vect_snap)
            del learned[depth:]
            snapshots = None
            batch = rng.sample(messages, 10)
            assert pure.score_many_ids(batch) == vect.score_many_ids(batch)

    if snapshots is not None:
        pure.restore(snapshots[0])
        vect.restore(snapshots[1])

    assert _full_state(pure) == _full_state(vect)
    assert pure.score_many_ids(messages) == vect.score_many_ids(messages)
    assert classifier_to_dict(pure) == classifier_to_dict(vect)


def test_csr_scoring_matches_arrays_and_oracle():
    rng = random.Random(5)
    table = TokenTable()
    pure = Classifier(table=table)
    vect = NDClassifier(table=table)
    messages = [_random_message(rng, table) for _ in range(80)]
    for ids in messages[:50]:
        label = rng.random() < 0.5
        pure.learn_ids(ids, label)
        vect.learn_ids(ids, label)
    corpus = ndkernel.CsrMatrix.from_rows(messages)
    oracle = pure.score_many_ids(messages)
    assert vect.score_many_ids(messages) == oracle
    assert vect.score_csr(corpus) == oracle
    subset = [3, 17, 17, 0, 79]
    assert vect.score_csr(corpus, rows=subset) == [oracle[i] for i in subset]


def test_pickle_round_trip_preserves_scores():
    import pickle

    rng = random.Random(13)
    table = TokenTable()
    vect = NDClassifier(table=table)
    messages = [_random_message(rng, table) for _ in range(30)]
    for ids in messages[:20]:
        vect.learn_ids(ids, rng.random() < 0.5)
    clone = pickle.loads(pickle.dumps(vect))
    assert clone.score_many_ids(messages) == vect.score_many_ids(messages)
    copied = vect.copy()
    assert copied.score_many_ids(messages) == vect.score_many_ids(messages)


# ----------------------------------------------------------------------
# Attack classes through the sweep engine
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def diff_corpus():
    return TrecStyleCorpus.generate(n_ham=90, n_spam=90, profile=TINY_PROFILE, seed=17)


@pytest.fixture(scope="module")
def diff_inbox(diff_corpus):
    inbox = diff_corpus.dataset.sample_inbox(80, 0.5, random.Random(4))
    inbox.tokenize_all()
    return inbox


def _sweep_dicts(inbox, attack, *, workers: int, seed: int = 21, ham_only=False):
    spec = SweepSpec("diff", attack, (0.0, 0.15), ham_only=ham_only)
    (result,) = run_attack_sweeps(
        inbox, [(spec, random.Random(seed))], folds=3, workers=workers
    )
    return result.confusion_dicts()


@pytest.mark.parametrize(
    "variant", ["optimal", "usenet", "aspell", "informed", "focused"]
)
def test_attack_variants_bit_identical_across_kernels(diff_corpus, diff_inbox, variant):
    attack = build_attack_variants(
        diff_corpus, (variant,), seed=9, pool=diff_inbox
    )[variant]
    with forced_kernel("python"):
        oracle = _sweep_dicts(diff_inbox, attack, workers=1)
    with forced_kernel("nd"):
        vectorized = _sweep_dicts(diff_inbox, attack, workers=1)
        pooled = _sweep_dicts(diff_inbox, attack, workers=max(2, SUITE_WORKERS))
    assert vectorized == oracle
    assert pooled == oracle


def test_hamlabeled_attack_bit_identical(diff_corpus, diff_inbox):
    attack = HamLabeledAttack.from_vocabulary(diff_corpus.vocabulary)
    with forced_kernel("python"):
        oracle = _sweep_dicts(diff_inbox, attack, workers=1, ham_only=True)
    with forced_kernel("nd"):
        assert _sweep_dicts(diff_inbox, attack, workers=1, ham_only=True) == oracle
        assert _sweep_dicts(diff_inbox, attack, workers=2, ham_only=True) == oracle


def test_goodword_oracle_attack_bit_identical(diff_corpus, diff_inbox):
    """The evasion-side attack: ranked words and padded scores match."""

    def ranked_and_scores(kernel: str):
        with forced_kernel(kernel):
            classifier = ndkernel.create_classifier()
            for message in diff_inbox:
                classifier.learn(message.tokens(), message.is_spam)
            attack = OracleGoodWordAttack(
                classifier, diff_corpus.vocabulary.ham_topic
            )
            spam = next(m for m in diff_inbox if m.is_spam)
            padded = attack.pad(spam.email, 25).padded
            from repro.spambayes.tokenizer import DEFAULT_TOKENIZER

            return attack.ranked_words, classifier.score(
                frozenset(DEFAULT_TOKENIZER.tokenize(padded))
            )

    assert ranked_and_scores("nd") == ranked_and_scores("python")


# ----------------------------------------------------------------------
# Both defenses
# ----------------------------------------------------------------------


def test_roni_defense_bit_identical(diff_corpus, diff_inbox):
    def measurements(kernel: str):
        with forced_kernel(kernel):
            defense = RoniDefense(
                diff_inbox,
                SeedSpawner(31).rng("roni"),
                RoniConfig(train_size=20, validation_size=20, trials=3),
            )
            candidates = diff_corpus.dataset.messages[:12]
            return [
                (
                    m.ham_as_ham_delta,
                    m.ham_as_spam_delta,
                    m.ham_as_unsure_delta,
                    m.spam_as_spam_delta,
                    m.trials,
                )
                for m in defense.measure_many(candidates)
            ]

    assert measurements("nd") == measurements("python")


def test_threshold_defense_bit_identical(diff_inbox):
    def fit(kernel: str):
        with forced_kernel(kernel):
            defense = DynamicThresholdDefense()
            result = defense.fit(diff_inbox, random.Random(77))
            return (
                result.ham_cutoff,
                result.spam_cutoff,
                result.quantile,
                result.validation_size,
            )

    assert fit("nd") == fit("python")


# ----------------------------------------------------------------------
# Worker counts: 1 vs 2, private pools, exactly one engine contract
# ----------------------------------------------------------------------


def test_worker_counts_bit_identical_on_nd_kernel(diff_corpus, diff_inbox):
    attack = OptimalDictionaryAttack.from_vocabulary(diff_corpus.vocabulary)
    with forced_kernel("nd"):
        sequential = _sweep_dicts(diff_inbox, attack, workers=1)
        parallel = _sweep_dicts(diff_inbox, attack, workers=2)
    with forced_kernel("python"):
        oracle = _sweep_dicts(diff_inbox, attack, workers=1)
    assert sequential == oracle
    assert parallel == oracle


def test_stream_protocol_with_defenses_bit_identical():
    """Whole-stream runs (per-tick defenses included) match per kernel."""
    from repro.stream.runner import run_stream_experiment
    from repro.stream.spec import StreamSpec

    for defense in ("none", "threshold"):
        spec = StreamSpec(
            ticks=3,
            ham_per_tick=6,
            spam_per_tick=6,
            attack_variant="usenet",
            attack_start_tick=2,
            attack_per_tick=3,
            test_size=16,
            defense=defense,
            seed=55,
        )
        with forced_kernel("python"):
            oracle = run_stream_experiment(spec).to_record().as_dict()
        with forced_kernel("nd"):
            vectorized = run_stream_experiment(spec).to_record().as_dict()
        assert json.dumps(vectorized, sort_keys=True) == json.dumps(
            oracle, sort_keys=True
        )


# ----------------------------------------------------------------------
# PYTHONHASHSEED pinning: the layout must be hash-randomization-proof
# ----------------------------------------------------------------------

_HASHSEED_SCRIPT = """
import json, random
from repro.corpus.trec import TrecStyleCorpus
from repro.corpus.vocabulary import TINY_PROFILE
from repro.attacks.dictionary import OptimalDictionaryAttack
from repro.engine.sweep import SweepSpec, run_attack_sweeps

corpus = TrecStyleCorpus.generate(n_ham=60, n_spam=60, profile=TINY_PROFILE, seed=17)
inbox = corpus.dataset.sample_inbox(50, 0.5, random.Random(4))
attack = OptimalDictionaryAttack.from_vocabulary(corpus.vocabulary)
spec = SweepSpec("hs", attack, (0.0, 0.2))
(result,) = run_attack_sweeps(inbox, [(spec, random.Random(21))], folds=3, workers=1)
print(json.dumps(result.confusion_dicts(), sort_keys=True))
"""


def _run_pinned(hashseed: str, kernel: str, workers: str = "1") -> str:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hashseed
    env[ndkernel.KERNEL_ENV] = kernel
    env["REPRO_WORKERS"] = workers
    src = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-c", _HASHSEED_SCRIPT],
        env=env,
        capture_output=True,
        text=True,
        check=True,
    )
    return proc.stdout


def test_hashseed_pinned_outputs_byte_identical():
    baseline = _run_pinned("0", "nd")
    assert _run_pinned("7", "nd") == baseline
    assert _run_pinned("0", "python") == baseline
    assert _run_pinned("7", "python") == baseline


# ----------------------------------------------------------------------
# Kernel edges: selection errors, CSR validation, growth, purge paths
# ----------------------------------------------------------------------


class TestKernelEdges:
    def test_kernel_name_rejects_bad_values(self, monkeypatch):
        monkeypatch.setenv(ndkernel.KERNEL_ENV, "bogus")
        with pytest.raises(ConfigurationError):
            ndkernel.kernel_name()
        monkeypatch.setenv(ndkernel.KERNEL_ENV, "nd")
        monkeypatch.setattr(ndkernel, "np", None)
        assert not ndkernel.available()
        with pytest.raises(ConfigurationError):
            ndkernel.kernel_name()

    def test_csr_validation_ndarray_input_and_nbytes(self):
        with pytest.raises(ConfigurationError):
            ndkernel.CsrMatrix(
                np.zeros((2, 2), dtype=np.int64), np.zeros(3, dtype=np.int64)
            )
        csr = ndkernel.CsrMatrix.from_rows([np.array([4, 7], dtype=np.int64)])
        assert csr.nbytes() == csr.indices.nbytes + csr.indptr.nbytes
        assert csr.row(0).tolist() == [4, 7]

    def test_score_csr_empty_corpus_and_blank_rows(self):
        table = TokenTable()
        pure = Classifier(table=table)
        vect = NDClassifier(table=table)
        ids = table.encode_unique({"x1", "x2"})
        pure.learn_ids(ids, True)
        vect.learn_ids(ids, True)
        assert vect.score_csr(ndkernel.CsrMatrix.from_rows([])) == []
        blanks = ndkernel.CsrMatrix.from_rows([[], []])
        assert vect.score_csr(blanks) == pure.score_many_ids([[], []])

    def test_untrained_classifier_scores_match(self):
        table = TokenTable()
        pure = Classifier(table=table)
        vect = NDClassifier(table=table)
        ids = table.encode_unique({"u1", "u2", "u3"})
        assert vect.score_many_ids([ids, []]) == pure.score_many_ids([ids, []])

    def test_word_info_matches_pure(self):
        table = TokenTable()
        pure = Classifier(table=table)
        vect = NDClassifier(table=table)
        ids = table.encode_unique({"known"})
        pure.learn_ids(ids, True)
        vect.learn_ids(ids, True)
        pure_info = pure.word_info("known")
        vect_info = vect.word_info("known")
        assert (vect_info.spamcount, vect_info.hamcount) == (
            pure_info.spamcount,
            pure_info.hamcount,
        )
        assert isinstance(vect_info.spamcount, int)
        assert vect.word_info("never-seen") is None

    def test_unlearn_edges_match_pure(self):
        table = TokenTable()
        pure = Classifier(table=table)
        vect = NDClassifier(table=table)
        ids = table.encode_unique({"a", "b"})
        pure.learn_ids(ids, True)
        vect.learn_ids(ids, True)
        # Empty removals are no-ops on both kernels.
        pure.unlearn_ids_repeated([], True, 1)
        vect.unlearn_ids_repeated([], True, 1)
        # Removing something never learned fails identically and must
        # leave state untouched.
        stranger = table.encode_unique({"stranger"})
        with pytest.raises(TrainingError):
            pure.unlearn_ids_repeated(stranger, True, 1)
        with pytest.raises(TrainingError):
            vect.unlearn_ids_repeated(stranger, True, 1)
        assert _full_state(pure) == _full_state(vect)
        assert pure.score_ids(ids) == vect.score_ids(ids)

    def test_table_growth_after_scoring_stays_bit_identical(self):
        """Scoring sizes the kernel's columns; later growth must resync."""
        table = TokenTable()
        pure = Classifier(table=table)
        vect = NDClassifier(table=table)
        first = table.encode_unique({f"a{i}" for i in range(50)})
        pure.learn_ids(first, True)
        vect.learn_ids(first, True)
        assert pure.score_ids(first) == vect.score_ids(first)
        # Grow the shared table WITHOUT training: another consumer of
        # the table encoded new tokens.  Training would retag and
        # rebuild; pure growth must extend the memo arrays in place.
        second = table.encode_unique({f"b{i}" for i in range(300)})
        corpus = ndkernel.CsrMatrix.from_rows([first, second])
        assert vect.score_csr(corpus) == pure.score_many_ids([first, second])
        # And after training on the new tokens both kernels re-agree.
        pure.learn_ids(second, False)
        vect.learn_ids(second, False)
        assert vect.score_csr(corpus) == pure.score_many_ids([first, second])

    def test_bulk_mutation_purges_memo_bit_identically(self):
        """A huge learn after scoring crosses the memo-purge heuristic."""
        table = TokenTable()
        pure = Classifier(table=table)
        vect = NDClassifier(table=table)
        small = table.encode_unique({"s1", "s2"})
        pure.learn_ids(small, True)
        vect.learn_ids(small, True)
        assert pure.score_ids(small) == vect.score_ids(small)
        big = table.encode_unique({f"t{i}" for i in range(1200)})
        pure.learn_ids(big, False)
        vect.learn_ids(big, False)
        assert pure.score_many_ids([small, big]) == vect.score_many_ids(
            [small, big]
        )

    def test_restore_misuse_raises_identically(self):
        """Foreign / spent snapshots die the same way on both kernels."""
        for cls in (Classifier, NDClassifier):
            table = TokenTable()
            owner = cls(table=table)
            other = cls(table=table)
            ids = table.encode_unique({"r1", "r2"})
            owner.learn_ids(ids, True)
            snap = owner.snapshot()
            with pytest.raises(TrainingError):
                other.restore(snap)
            owner.restore(snap)
            with pytest.raises(TrainingError):
                owner.restore(snap)

    def test_unlearn_count_underflow_raises_identically(self):
        """The count-negative guard fires for both kernels, not just the
        global nspam guard: two spam messages trained, one unlearned
        twice."""
        table = TokenTable()
        pure = Classifier(table=table)
        vect = NDClassifier(table=table)
        shared = table.encode_unique({"c1", "c2"})
        rare = table.encode_unique({"c1", "c2", "c3"})
        for core in (pure, vect):
            core.learn_ids(shared, True)
            core.learn_ids(rare, True)
            core.unlearn_ids(rare, True)
            with pytest.raises(TrainingError):
                core.unlearn_ids(rare, True)
        assert _full_state(pure) == _full_state(vect)
        assert pure.score_ids(shared) == vect.score_ids(shared)

    def test_long_extreme_messages_renormalize_identically(self):
        """150+ near-certain discriminators underflow the chi2 mantissa
        product; the vectorized renormalization must land on the same
        bits as the pure combiner's."""
        table = TokenTable()
        pure = Classifier(table=table)
        vect = NDClassifier(table=table)
        spam_ids = table.encode_unique({f"sp{i}" for i in range(160)})
        ham_ids = table.encode_unique({f"hm{i}" for i in range(160)})
        pure.learn_ids_repeated(spam_ids, True, 40)
        vect.learn_ids_repeated(spam_ids, True, 40)
        pure.learn_ids_repeated(ham_ids, False, 40)
        vect.learn_ids_repeated(ham_ids, False, 40)
        mixed = np.concatenate([spam_ids, ham_ids])
        batch = [spam_ids, ham_ids, mixed]
        assert pure.score_many_ids(batch) == vect.score_many_ids(batch)
