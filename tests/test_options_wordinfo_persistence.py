"""Tests for options validation, WordInfo, and persistence."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError, PersistenceError
from repro.spambayes.classifier import Classifier
from repro.spambayes.options import ClassifierOptions, DEFAULT_OPTIONS
from repro.spambayes.persistence import (
    classifier_from_dict,
    classifier_to_dict,
    load_classifier,
    save_classifier,
)
from repro.spambayes.wordinfo import WordInfo


class TestOptions:
    def test_defaults_match_paper(self):
        assert DEFAULT_OPTIONS.unknown_word_prob == 0.5
        assert DEFAULT_OPTIONS.unknown_word_strength == 0.45
        assert DEFAULT_OPTIONS.minimum_prob_strength == 0.1
        assert DEFAULT_OPTIONS.max_discriminators == 150
        assert DEFAULT_OPTIONS.ham_cutoff == 0.15
        assert DEFAULT_OPTIONS.spam_cutoff == 0.90

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"unknown_word_prob": 1.5},
            {"unknown_word_prob": -0.1},
            {"unknown_word_strength": -1.0},
            {"minimum_prob_strength": 0.6},
            {"max_discriminators": 0},
            {"ham_cutoff": 0.95, "spam_cutoff": 0.9},
            {"ham_cutoff": -0.1},
            {"spam_cutoff": 1.1},
        ],
    )
    def test_invalid_options_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            ClassifierOptions(**kwargs)

    def test_with_cutoffs(self):
        derived = DEFAULT_OPTIONS.with_cutoffs(0.3, 0.7)
        assert derived.ham_cutoff == 0.3
        assert derived.spam_cutoff == 0.7
        assert derived.unknown_word_strength == DEFAULT_OPTIONS.unknown_word_strength
        assert DEFAULT_OPTIONS.ham_cutoff == 0.15  # original untouched


class TestWordInfo:
    def test_total(self):
        assert WordInfo(3, 4).total == 7

    def test_is_empty(self):
        assert WordInfo().is_empty()
        assert not WordInfo(1, 0).is_empty()

    def test_copy_and_equality(self):
        record = WordInfo(2, 5)
        clone = record.copy()
        assert record == clone
        clone.spamcount += 1
        assert record != clone

    def test_equality_with_other_types(self):
        assert WordInfo(1, 1) != "not a wordinfo"


class TestPersistence:
    def _trained(self) -> Classifier:
        classifier = Classifier()
        for _ in range(3):
            classifier.learn({"cash", "offer"}, True)
            classifier.learn({"meeting", "notes"}, False)
        return classifier

    def test_dict_roundtrip(self):
        original = self._trained()
        restored = classifier_from_dict(classifier_to_dict(original))
        assert restored.nspam == original.nspam
        assert restored.nham == original.nham
        assert restored.spam_prob("cash") == original.spam_prob("cash")
        assert restored.score({"cash", "meeting"}) == original.score({"cash", "meeting"})

    def test_file_roundtrip_plain(self, tmp_path):
        original = self._trained()
        path = tmp_path / "db.json"
        save_classifier(original, path)
        restored = load_classifier(path)
        assert restored.vocabulary_size == original.vocabulary_size

    def test_file_roundtrip_gzip(self, tmp_path):
        original = self._trained()
        path = tmp_path / "db.json.gz"
        save_classifier(original, path)
        restored = load_classifier(path)
        assert restored.score({"cash"}) == original.score({"cash"})

    @pytest.mark.parametrize("suffix", [".GZ", ".Gz", ".gz"])
    def test_gzip_suffix_casing_roundtrip(self, tmp_path, suffix):
        # .GZ must select the gzip codec exactly like .gz — silently
        # writing plain text under a .GZ name used to make the dump
        # unreadable by any case-normalizing reader.
        import gzip

        original = self._trained()
        path = tmp_path / f"db.json{suffix}"
        save_classifier(original, path)
        with gzip.open(path, "rt", encoding="utf-8") as handle:
            assert json.load(handle)["format"] == "repro-spambayes-v1"
        restored = load_classifier(path)
        assert restored.score({"cash", "meeting"}) == original.score({"cash", "meeting"})

    def test_loaded_classifier_keeps_training_like_the_original(self, tmp_path):
        # Persistence restores through the supported bulk-load
        # constructor, so a loaded classifier must behave identically
        # to one that never went to disk — including *further* training
        # (memo/dirty invariants) and snapshot cycling.
        original = self._trained()
        path = tmp_path / "db.json"
        save_classifier(original, path)
        restored = load_classifier(path)
        probe = {"cash", "meeting", "fresh"}
        for classifier in (original, restored):
            classifier.score(probe)  # warm the memos before mutating
            classifier.learn({"cash", "fresh", "prize"}, True)
            classifier.unlearn({"meeting", "notes"}, False)
            snap = classifier.snapshot()
            classifier.learn_repeated({"prize", "offer"}, True, 5)
            classifier.restore(snap)
        assert restored.nspam == original.nspam
        assert restored.nham == original.nham
        assert restored.score(probe) == original.score(probe)
        assert restored.score_many([probe, {"prize"}]) == original.score_many(
            [probe, {"prize"}]
        )

    def test_bulk_load_validation(self):
        from repro.errors import TrainingError

        with pytest.raises(TrainingError):
            Classifier.from_token_counts([("a", -1, 0)], nspam=1, nham=0)
        with pytest.raises(TrainingError):
            Classifier.from_token_counts(
                [("a", 1, 0), ("a", 0, 1)], nspam=1, nham=1
            )
        with pytest.raises(TrainingError):
            Classifier.from_token_counts([], nspam=-1, nham=0)

    def test_bulk_load_into_shared_table(self):
        from repro.spambayes.token_table import TokenTable

        table = TokenTable(["pre", "existing"])
        classifier = Classifier.from_token_counts(
            [("existing", 2, 1), ("novel", 0, 3)], nspam=2, nham=3, table=table
        )
        assert classifier.table is table
        assert classifier.vocabulary_size == 2
        assert classifier.word_info("existing").spamcount == 2
        assert classifier.word_info("novel").hamcount == 3
        assert classifier.word_info("pre") is None

    def test_gzip_smaller_for_large_db(self, tmp_path):
        classifier = Classifier()
        classifier.learn({f"token{i}" for i in range(5000)}, True)
        plain, gz = tmp_path / "db.json", tmp_path / "db.json.gz"
        save_classifier(classifier, plain)
        save_classifier(classifier, gz)
        assert gz.stat().st_size < plain.stat().st_size

    def test_options_preserved(self, tmp_path):
        classifier = Classifier(ClassifierOptions(ham_cutoff=0.25, spam_cutoff=0.8))
        classifier.learn({"a", "b", "c"}, True)
        path = tmp_path / "db.json"
        save_classifier(classifier, path)
        assert load_classifier(path).options.ham_cutoff == 0.25

    def test_unknown_format_rejected(self):
        with pytest.raises(PersistenceError):
            classifier_from_dict({"format": "bogus-v9"})

    def test_corrupt_dump_rejected(self):
        with pytest.raises(PersistenceError):
            classifier_from_dict(
                {"format": "repro-spambayes-v1", "nspam": "x", "nham": 0,
                 "options": {}, "words": {}}
            )

    def test_negative_counts_rejected(self):
        with pytest.raises(PersistenceError):
            classifier_from_dict(
                {
                    "format": "repro-spambayes-v1",
                    "nspam": -1,
                    "nham": 0,
                    "options": {},
                    "words": {},
                }
            )

    def test_invalid_json_file_rejected(self, tmp_path):
        path = tmp_path / "db.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(PersistenceError):
            load_classifier(path)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(PersistenceError):
            load_classifier(tmp_path / "absent.json")
