"""Cross-module property-based invariants.

These hypothesis tests exercise the couplings the experiments rely on:
batched vs sequential training equivalence, attack train/untrain
round-trips, prefix-training consistency, and persistence fidelity
under arbitrary training histories.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attacks.base import AttackBatch, AttackMessageGroup
from repro.experiments.crossval import _IncrementalAttackTrainer
from repro.spambayes.classifier import Classifier
from repro.spambayes.persistence import classifier_from_dict, classifier_to_dict

token_sets = st.sets(st.sampled_from([f"w{i}" for i in range(25)]), min_size=1, max_size=8)
histories = st.lists(st.tuples(token_sets, st.booleans()), min_size=1, max_size=25)


def _state(classifier: Classifier) -> tuple:
    vocabulary = {
        token: (classifier.word_info(token).spamcount, classifier.word_info(token).hamcount)
        for token in classifier.iter_vocabulary()
    }
    return classifier.nspam, classifier.nham, vocabulary


@given(history=histories, tokens=token_sets, count=st.integers(min_value=1, max_value=30))
@settings(max_examples=40, deadline=None)
def test_learn_repeated_equals_sequential(history, tokens, count):
    sequential = Classifier()
    batched = Classifier()
    for message_tokens, is_spam in history:
        sequential.learn(message_tokens, is_spam)
        batched.learn(message_tokens, is_spam)
    for _ in range(count):
        sequential.learn(tokens, True)
    batched.learn_repeated(tokens, True, count)
    assert _state(sequential) == _state(batched)
    probe = set(list(tokens)[:3]) | {"w0"}
    assert sequential.score(probe) == batched.score(probe)


@given(
    history=histories,
    groups=st.lists(
        st.tuples(token_sets, st.integers(min_value=1, max_value=5)),
        min_size=1,
        max_size=5,
    ),
)
@settings(max_examples=40, deadline=None)
def test_attack_batch_roundtrip(history, groups):
    classifier = Classifier()
    for message_tokens, is_spam in history:
        classifier.learn(message_tokens, is_spam)
    snapshot = _state(classifier)
    batch = AttackBatch(
        "prop",
        [AttackMessageGroup(tokens=frozenset(t), count=c) for t, c in groups],
    )
    batch.train_into(classifier)
    assert classifier.nspam == snapshot[0] + batch.message_count
    batch.untrain_from(classifier)
    assert _state(classifier) == snapshot


@given(
    groups=st.lists(
        st.tuples(token_sets, st.integers(min_value=1, max_value=6)),
        min_size=1,
        max_size=5,
    ),
    data=st.data(),
)
@settings(max_examples=40, deadline=None)
def test_incremental_prefix_equals_fresh_training(groups, data):
    """Advancing a trainer to N must equal training the first N batch
    messages from scratch, for any N and any group structure."""
    batch = AttackBatch(
        "prop",
        [AttackMessageGroup(tokens=frozenset(t), count=c) for t, c in groups],
    )
    target = data.draw(st.integers(min_value=0, max_value=batch.message_count))
    incremental = Classifier()
    incremental.learn({"base"}, False)
    trainer = _IncrementalAttackTrainer(incremental, batch)
    trainer.advance_to(target)

    fresh = Classifier()
    fresh.learn({"base"}, False)
    remaining = target
    for group in batch.groups:
        take = min(group.count, remaining)
        fresh.learn_repeated(group.training_tokens, True, take)
        remaining -= take
        if remaining == 0:
            break
    assert _state(incremental) == _state(fresh)


@given(history=histories)
@settings(max_examples=40, deadline=None)
def test_persistence_is_faithful_for_any_history(history):
    original = Classifier()
    for message_tokens, is_spam in history:
        original.learn(message_tokens, is_spam)
    restored = classifier_from_dict(classifier_to_dict(original))
    assert _state(restored) == _state(original)
    probe = {"w0", "w1", "w2"}
    assert restored.score(probe) == original.score(probe)


@given(history=histories)
@settings(max_examples=30, deadline=None)
def test_copy_never_aliases(history):
    original = Classifier()
    for message_tokens, is_spam in history:
        original.learn(message_tokens, is_spam)
    clone = original.copy()
    snapshot = _state(original)
    clone.learn({"w0", "w1"}, True)
    clone.learn_repeated({"w2"}, False, 3)
    assert _state(original) == snapshot
