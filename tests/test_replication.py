"""Tests for the multi-seed replication engine.

Three layers, mirroring how the tentpole is built:

* :class:`~repro.engine.runner.WorkerPool` — the shared process pool
  many ``ParallelRunner.map`` calls drain into (routing, chunk
  reassembly, error propagation);
* :func:`~repro.engine.replicate.replicate_scenario` — replica seed
  derivation, pooled statistics, and the core guarantee that the
  flattened (seed × spec × fold) schedule returns byte-identical
  records to the sequential path;
* the ``repro replicate`` CLI — rendering, ``--out`` records, and
  worker-count invariance of the emitted bytes.
"""

from __future__ import annotations

import json

import pytest

from repro.engine.replicate import replica_seeds, replicate_scenario
from repro.engine.runner import ParallelRunner, WorkerPool, use_worker_pool
from repro.errors import EngineError

TINY_DICTIONARY = dict(
    inbox_size=120,
    folds=2,
    corpus_ham=120,
    corpus_spam=120,
    attack_fractions=(0.0, 0.05),
)


# Module-level so the pool can pickle it by reference.
def _square_task(context, task):
    return context["offset"] + task * task


def _pid_task(context, task):
    import os

    return os.getpid()


def _failing_task(context, task):
    if task == 3:
        raise ValueError("task three exploded")
    return task


class TestWorkerPool:
    def test_rejects_sequential_sizes(self):
        with pytest.raises(EngineError):
            WorkerPool(1)

    def test_run_preserves_task_order_across_chunks(self):
        tasks = list(range(23))  # deliberately not divisible by workers
        with WorkerPool(3) as pool:
            results = pool.run(_square_task, {"offset": 5}, tasks)
        assert results == [5 + task * task for task in tasks]

    def test_empty_task_list(self):
        with WorkerPool(2) as pool:
            assert pool.run(_square_task, {"offset": 0}, []) == []

    def test_worker_exception_propagates(self):
        with WorkerPool(2) as pool:
            with pytest.raises(ValueError, match="task three exploded"):
                pool.run(_failing_task, None, list(range(6)))
            # The pool survives a failed call and serves the next one.
            assert pool.run(_square_task, {"offset": 0}, [2, 4]) == [4, 16]

    def test_closed_pool_rejected(self):
        pool = WorkerPool(2)
        pool.close()
        with pytest.raises(EngineError):
            pool.run(_square_task, {"offset": 0}, [1])

    def test_parallel_runner_routes_into_active_pool(self):
        tasks = list(range(8))
        expected = [1 + task * task for task in tasks]
        with WorkerPool(2) as pool:
            with use_worker_pool(pool):
                routed = ParallelRunner(workers=4).map(
                    _square_task, {"offset": 1}, tasks
                )
                # Sequential runners stay inline even with a pool active.
                inline = ParallelRunner(workers=1).map(
                    _square_task, {"offset": 1}, tasks
                )
            # Outside the context the runner is back to private pools /
            # inline execution — no EngineError from the closed pool.
        assert routed == expected
        assert inline == expected
        after = ParallelRunner(workers=1).map(_square_task, {"offset": 1}, tasks)
        assert after == expected

    def test_single_task_ships_when_heuristic_says_so(self, monkeypatch):
        # A lone task ships to the shared pool when the skip-pool
        # heuristic approves (whole-stream protocols are one task per
        # run; offloading it frees the replica thread), while without
        # a pool a single task stays inline rather than paying a
        # private fork.
        import os

        from repro.engine import runner as engine_runner

        monkeypatch.setattr(engine_runner, "_tiny_map_ships", lambda size: True)
        with WorkerPool(2) as pool:
            with use_worker_pool(pool):
                (pooled_pid,) = ParallelRunner(workers=2).map(_pid_task, None, [0])
        assert pooled_pid != os.getpid()
        (inline_pid,) = ParallelRunner(workers=2).map(_pid_task, None, [0])
        assert inline_pid == os.getpid()

    def test_single_task_stays_inline_when_heuristic_declines(self, monkeypatch):
        # The 0.98x regression fix: when shipping cannot pay for the
        # transfer (one CPU, or an outsized context), the tiny map
        # runs inline in the submitting thread — pool active or not.
        import os

        from repro.engine import runner as engine_runner

        monkeypatch.setattr(engine_runner, "_tiny_map_ships", lambda size: False)
        with WorkerPool(2) as pool:
            with use_worker_pool(pool):
                (pid,) = ParallelRunner(workers=2).map(_pid_task, None, [0])
        assert pid == os.getpid()

    def test_tiny_map_heuristic_inputs(self, monkeypatch):
        from repro.engine import runner as engine_runner

        monkeypatch.setattr(engine_runner.os, "cpu_count", lambda: 1)
        assert not engine_runner._tiny_map_ships(16)
        monkeypatch.setattr(engine_runner.os, "cpu_count", lambda: 4)
        assert engine_runner._tiny_map_ships(16)
        assert not engine_runner._tiny_map_ships(
            engine_runner._TINY_MAP_SHIP_LIMIT + 1
        )

    def test_single_task_records_identical_shipped_or_inline(self, monkeypatch):
        # Pin the byte-identity contract behind the heuristic: the
        # same whole-stream task produces the same record whether the
        # tiny map ships to the pool or stays inline.
        import dataclasses

        from repro.engine import runner as engine_runner
        from repro.stream.runner import run_stream_experiment
        from repro.stream.spec import StreamSpec

        spec = StreamSpec(
            ticks=2,
            ham_per_tick=12,
            spam_per_tick=12,
            attack_start_tick=2,
            attack_per_tick=4,
            test_size=20,
            seed=7,
        )
        records = {}
        for ships in (True, False):
            monkeypatch.setattr(
                engine_runner, "_tiny_map_ships", lambda size, s=ships: s
            )
            with WorkerPool(2) as pool:
                with use_worker_pool(pool):
                    result = run_stream_experiment(
                        dataclasses.replace(spec, workers=2)
                    )
            records[ships] = json.dumps(result.to_record().as_dict(), sort_keys=True)
        sequential = json.dumps(
            run_stream_experiment(spec).to_record().as_dict(), sort_keys=True
        )
        assert records[True] == records[False] == sequential


class TestReplicaSeeds:
    def test_deterministic_and_distinct(self):
        seeds = replica_seeds(0, 8)
        assert seeds == replica_seeds(0, 8)
        assert len(set(seeds)) == 8
        # Prefix-stable: asking for more seeds never changes the first ones.
        assert replica_seeds(0, 4) == seeds[:4]

    def test_base_seeds_do_not_overlap(self):
        assert not set(replica_seeds(0, 16)) & set(replica_seeds(1, 16))

    def test_invalid_counts_rejected(self):
        with pytest.raises(EngineError):
            replica_seeds(0, 0)
        with pytest.raises(EngineError):
            replicate_scenario("dictionary-vs-none", seeds=[])
        with pytest.raises(EngineError):
            replicate_scenario("dictionary-vs-none", seeds=[7, 7])


@pytest.mark.slow
class TestReplicateScenario:
    def test_replicas_are_standalone_runs(self):
        from repro.scenarios import get_scenario, run_scenario

        record = replicate_scenario(
            "dictionary-vs-none", seeds=2, overrides=TINY_DICTIONARY, workers=1
        )
        assert record.n_replicas == 2
        assert [s.name for s in record.stats] == ["usenet"]
        assert record.config["scenario"] == "dictionary-vs-none"
        seeds = record.config["replica_seeds"]
        assert seeds == replica_seeds(0, 2)
        # Replica 1's record is exactly a plain run at that seed.
        spec = get_scenario("dictionary-vs-none")
        config = spec.build_config(**TINY_DICTIONARY, seed=seeds[1], workers=1)
        standalone = run_scenario(spec, config=config).record
        assert record.replicas[1].as_dict() == standalone.as_dict()

    def test_flattened_pool_matches_sequential_bytes(self):
        sequential = replicate_scenario(
            "dictionary-vs-none", seeds=3, overrides=TINY_DICTIONARY, workers=1
        )
        flattened = replicate_scenario(
            "dictionary-vs-none", seeds=3, overrides=TINY_DICTIONARY, workers=2
        )
        assert json.dumps(flattened.as_dict(), indent=2) == json.dumps(
            sequential.as_dict(), indent=2
        )

    def test_explicit_seed_list(self):
        record = replicate_scenario(
            "dictionary-vs-none", seeds=[11, 5], overrides=TINY_DICTIONARY
        )
        assert record.config["replica_seeds"] == [11, 5]
        assert record.config["base_seed"] is None
        assert [r.config["seed"] for r in record.replicas] == [11, 5]

    def test_stats_pool_the_replica_curves(self):
        record = replicate_scenario(
            "dictionary-vs-none", seeds=3, overrides=TINY_DICTIONARY
        )
        stats = record.stats_named("usenet")
        for index, point in enumerate(stats.points):
            samples = [
                replica.series_named("usenet").points[index].ham_misclassified_rate
                for replica in record.replicas
            ]
            assert point.n == 3
            assert point.rate("ham_misclassified_rate").mean == pytest.approx(
                sum(samples) / 3
            )

    def test_scenario_without_series_pools_empty_stats(self):
        from repro.defenses.roni import RoniConfig

        record = replicate_scenario(
            "focused-vs-roni",
            seeds=2,
            overrides=dict(
                pool_size=80,
                n_nonattack_spam=4,
                repetitions_per_variant=1,
                corpus_ham=120,
                corpus_spam=120,
                roni=RoniConfig(train_size=10, validation_size=20, trials=2),
            ),
        )
        assert record.stats == []
        assert record.n_replicas == 2
        assert all(r.extras["attack_impacts"] for r in record.replicas)

    def test_base_config_and_overrides_conflict(self):
        from repro.scenarios import get_scenario

        config = get_scenario("dictionary-vs-none").build_config(**TINY_DICTIONARY)
        with pytest.raises(EngineError):
            replicate_scenario(
                "dictionary-vs-none",
                seeds=2,
                overrides={"folds": 2},
                base_config=config,
            )

    def test_reserved_overrides_rejected(self):
        # seed/workers in overrides would be silently overwritten by
        # the per-replica values while the record archived them as if
        # they had applied — reject instead.
        for reserved in ({"seed": 777}, {"workers": 3}):
            with pytest.raises(EngineError, match="conflicts with replication"):
                replicate_scenario(
                    "dictionary-vs-none",
                    seeds=2,
                    overrides={**TINY_DICTIONARY, **reserved},
                )


class TestRenderReplicated:
    def test_error_bar_table_renders(self):
        from repro.experiments.reporting import render_replicated_record

        record = replicate_scenario(
            "dictionary-vs-none", seeds=2, overrides=TINY_DICTIONARY
        )
        text = render_replicated_record(record)
        assert "pooled over 2 seed(s)" in text
        assert "ham-as-spam|unsure" in text
        assert "±" in text
        assert "usenet" in text

    def test_seriesless_record_renders_summary_line(self):
        from repro.experiments.reporting import render_replicated_record
        from repro.experiments.results import ExperimentRecord, ReplicatedRecord

        record = ReplicatedRecord.pool(
            [ExperimentRecord(experiment="x", config={}, extras={"n": 1})]
        )
        text = render_replicated_record(record)
        assert "no curve series" in text


@pytest.mark.slow
class TestReplicateCli:
    def _argv(self, tmp_path, workers):
        sets = [f"--set {key}={value!r}" for key, value in TINY_DICTIONARY.items()]
        return (
            ["replicate", "dictionary-vs-none", "--seeds", "2",
             "--workers", str(workers), "--out", str(tmp_path / f"w{workers}.json")]
            + [part for pair in sets for part in pair.split(" ", 1)]
        )

    def test_cli_writes_identical_records_at_any_worker_count(self, tmp_path, capsys):
        from repro.cli import main

        assert main(self._argv(tmp_path, 1)) == 0
        assert main(self._argv(tmp_path, 2)) == 0
        out = capsys.readouterr().out
        assert "pooled over 2 seed(s)" in out
        first = (tmp_path / "w1.json").read_bytes()
        second = (tmp_path / "w2.json").read_bytes()
        assert first == second
        record = json.loads(first)
        assert record["config"]["scenario"] == "dictionary-vs-none"
        assert record["config"]["scale"] == "small"
        assert len(record["replicas"]) == 2
        assert record["stats"][0]["points"][0]["n"] == 2

    def test_cli_rejects_reserved_and_unknown_overrides(self, capsys):
        from repro.cli import main

        assert main(["replicate", "dictionary-vs-none", "--set", "seed=3"]) == 2
        assert "conflicts with replication" in capsys.readouterr().err
        assert main(["replicate", "dictionary-vs-none", "--set", "bogus=1"]) == 2
        assert "unknown override" in capsys.readouterr().err
        assert main(["replicate", "no-such-scenario"]) == 2
        assert "unknown scenario" in capsys.readouterr().err
        assert main(["replicate", "dictionary-vs-none", "--seeds", "0"]) == 2
        assert "--seeds" in capsys.readouterr().err
