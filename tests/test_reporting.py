"""Tests for the reporting/rendering layer."""

from __future__ import annotations

import pytest

from repro.experiments.dictionary_exp import DictionaryExperimentConfig, DictionaryExperimentResult
from repro.experiments.crossval import AttackSweepPoint
from repro.experiments.focused_exp import (
    FocusedExperimentConfig,
    FocusedKnowledgeResult,
    FocusedSizeResult,
)
from repro.experiments.metrics import ConfusionCounts
from repro.experiments.reporting import (
    format_table,
    render_dictionary_result,
    render_focused_knowledge_result,
    render_focused_size_result,
    render_roni_result,
    render_table1,
    render_threshold_result,
)
from repro.experiments.results import CurvePoint
from repro.experiments.roni_exp import RoniExperimentConfig, RoniExperimentResult
from repro.experiments.threshold_exp import ThresholdExperimentConfig, ThresholdExperimentResult


class TestFormatTable:
    def test_columns_padded(self):
        table = format_table(["a", "long header"], [["x", "1"], ["yy", "22"]])
        lines = table.split("\n")
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines[1:3])

    def test_values_stringified(self):
        table = format_table(["n"], [[42], [3.5]])
        assert "42" in table
        assert "3.5" in table


class TestRenderTable1:
    def test_contains_all_experiments(self):
        table = render_table1()
        for name in ("Dictionary Attack", "Focused Attack", "RONI Defense", "Threshold Defense"):
            assert name in table

    def test_contains_paper_values(self):
        table = render_table1()
        assert "2,000, 10,000" in table
        assert "5 repetitions" in table


def _confusion(ham_as_spam=10, ham_as_unsure=20, ham_as_ham=70) -> ConfusionCounts:
    return ConfusionCounts(
        ham_as_ham=ham_as_ham,
        ham_as_unsure=ham_as_unsure,
        ham_as_spam=ham_as_spam,
        spam_as_spam=90,
        spam_as_unsure=10,
    )


class TestRenderDictionary:
    def test_table_and_chart(self):
        config = DictionaryExperimentConfig(
            inbox_size=100, folds=2, corpus_ham=100, corpus_spam=100,
            attack_fractions=(0.0, 0.01),
        )
        result = DictionaryExperimentResult(config=config)
        result.sweeps["usenet"] = [
            AttackSweepPoint(0.0, 0, _confusion(0, 0, 100)),
            AttackSweepPoint(0.01, 1, _confusion()),
        ]
        text = render_dictionary_result(result)
        assert "usenet" in text
        assert "1.0%" in text
        assert "Figure 1" in text
        assert "legend" in text


class TestRenderFocused:
    def test_knowledge_render(self):
        config = FocusedExperimentConfig(corpus_ham=700, corpus_spam=700)
        result = FocusedKnowledgeResult(config=config)
        result.label_counts = {
            0.1: {"ham": 8, "unsure": 2, "spam": 0},
            0.9: {"ham": 0, "unsure": 2, "spam": 8},
        }
        text = render_focused_knowledge_result(result)
        assert "p=0.1" in text
        assert "p=0.9" in text
        assert "Figure 2" in text

    def test_size_render(self):
        config = FocusedExperimentConfig(corpus_ham=700, corpus_spam=700)
        result = FocusedSizeResult(config=config)
        result.points = [CurvePoint(0.0, 0.0, 0.0), CurvePoint(0.1, 0.2, 0.8)]
        text = render_focused_size_result(result)
        assert "Figure 3" in text
        assert "10.0%" in text


class TestRenderRoni:
    def test_summary_lines(self):
        config = RoniExperimentConfig(corpus_ham=400, corpus_spam=400)
        result = RoniExperimentResult(config=config)
        result.attack_impacts = {"usenet": [10.0, 12.0], "aspell": [9.0, 11.0]}
        result.nonattack_spam_impacts = [0.5, 1.0, -0.2]
        text = render_roni_result(result)
        assert "SEPARABLE" in text
        assert "detection 100%" in text
        assert "attack:usenet" in text
        assert "non-attack spam" in text

    def test_not_separable_reported(self):
        config = RoniExperimentConfig(corpus_ham=400, corpus_spam=400)
        result = RoniExperimentResult(config=config)
        result.attack_impacts = {"usenet": [2.0]}
        result.nonattack_spam_impacts = [3.0]
        assert "NOT separable" in render_roni_result(result)


class TestRenderThreshold:
    def test_arms_and_fits(self):
        config = ThresholdExperimentConfig(corpus_ham=700, corpus_spam=700)
        result = ThresholdExperimentResult(config=config)
        result.series = {
            "no-defense": [CurvePoint(0.0, 0.0, 0.0), CurvePoint(0.05, 0.5, 0.9)],
            "threshold-0.05": [CurvePoint(0.0, 0.0, 0.0), CurvePoint(0.05, 0.0, 0.2, 0.4, 0.5)],
        }
        result.fitted_thresholds = {"threshold-0.05": [(0.05, 0.8, 0.95)]}
        text = render_threshold_result(result)
        assert "no-defense" in text
        assert "threshold-0.05" in text
        assert "Figure 5" in text
        assert "fitted thresholds" in text
        assert "θ=(0.800,0.950)" in text
