"""Tests for result serialization and the Table 1 constants."""

from __future__ import annotations

import pytest

from repro.errors import ExperimentError
from repro.experiments.metrics import ConfusionCounts
from repro.experiments.params import (
    DICTIONARY_PARAMS,
    FOCUSED_PARAMS,
    RONI_PARAMS,
    TABLE1,
    THRESHOLD_PARAMS,
)
from repro.experiments.results import (
    CurvePoint,
    ExperimentRecord,
    Series,
    load_record,
    save_record,
)


class TestTable1:
    """Pin the paper's Table 1 values."""

    def test_dictionary_column(self):
        assert DICTIONARY_PARAMS.training_set_sizes == (2_000, 10_000)
        assert DICTIONARY_PARAMS.test_set_sizes == (200, 1_000)
        assert DICTIONARY_PARAMS.spam_prevalences == (0.50, 0.75)
        assert DICTIONARY_PARAMS.attack_fractions == (0.001, 0.005, 0.01, 0.02, 0.05, 0.10)
        assert DICTIONARY_PARAMS.validation == "10"

    def test_focused_column(self):
        assert FOCUSED_PARAMS.training_set_sizes == (5_000,)
        assert FOCUSED_PARAMS.target_emails == 20
        assert FOCUSED_PARAMS.attack_fractions[0] == 0.02
        assert FOCUSED_PARAMS.attack_fractions[-1] == 0.50
        assert len(FOCUSED_PARAMS.attack_fractions) == 25

    def test_roni_column(self):
        assert RONI_PARAMS.training_set_sizes == (20,)
        assert RONI_PARAMS.test_set_sizes == (50,)
        assert RONI_PARAMS.attack_fractions == (0.05,)

    def test_threshold_column(self):
        assert THRESHOLD_PARAMS.attack_fractions == (0.001, 0.01, 0.05, 0.10)
        assert THRESHOLD_PARAMS.validation == "5"

    def test_table_has_four_columns(self):
        assert len(TABLE1) == 4

    def test_as_cells_renders_every_field(self):
        cells = DICTIONARY_PARAMS.as_cells()
        assert cells["Training set size"] == "2,000, 10,000"
        assert cells["Target emails"] == "N/A"


class TestCurvePoint:
    def test_from_confusion(self):
        confusion = ConfusionCounts(ham_as_ham=8, ham_as_unsure=1, ham_as_spam=1)
        point = CurvePoint.from_confusion(0.05, confusion)
        assert point.x == 0.05
        assert point.ham_as_spam_rate == pytest.approx(0.1)
        assert point.ham_misclassified_rate == pytest.approx(0.2)

    def test_dict_roundtrip(self):
        point = CurvePoint(0.1, 0.2, 0.3, 0.4, 0.5)
        assert CurvePoint.from_dict(point.as_dict()) == point


class TestExperimentRecord:
    def _record(self) -> ExperimentRecord:
        return ExperimentRecord(
            experiment="unit-test",
            config={"size": 10},
            series=[
                Series("a", [CurvePoint(0.0, 0.1, 0.2), CurvePoint(1.0, 0.3, 0.4)]),
                Series("b", [CurvePoint(0.0, 0.0, 0.0)]),
            ],
            extras={"note": "hello"},
        )

    def test_series_named(self):
        record = self._record()
        assert record.series_named("a").points[1].x == 1.0
        with pytest.raises(ExperimentError):
            record.series_named("missing")

    def test_series_values(self):
        series = self._record().series_named("a")
        assert series.xs() == [0.0, 1.0]
        assert series.values("ham_as_spam_rate") == [0.1, 0.3]

    def test_json_roundtrip(self, tmp_path):
        record = self._record()
        path = tmp_path / "record.json"
        save_record(record, path)
        loaded = load_record(path)
        assert loaded.experiment == record.experiment
        assert loaded.config == record.config
        assert loaded.extras == record.extras
        assert loaded.series_named("a").points == record.series_named("a").points
