"""Tests for result serialization and the Table 1 constants."""

from __future__ import annotations

import pytest

from repro.errors import ExperimentError
from repro.experiments.metrics import ConfusionCounts
from repro.experiments.params import (
    DICTIONARY_PARAMS,
    FOCUSED_PARAMS,
    RONI_PARAMS,
    TABLE1,
    THRESHOLD_PARAMS,
)
from repro.experiments.results import (
    CurvePoint,
    ExperimentRecord,
    Series,
    load_record,
    save_record,
)


class TestTable1:
    """Pin the paper's Table 1 values."""

    def test_dictionary_column(self):
        assert DICTIONARY_PARAMS.training_set_sizes == (2_000, 10_000)
        assert DICTIONARY_PARAMS.test_set_sizes == (200, 1_000)
        assert DICTIONARY_PARAMS.spam_prevalences == (0.50, 0.75)
        assert DICTIONARY_PARAMS.attack_fractions == (0.001, 0.005, 0.01, 0.02, 0.05, 0.10)
        assert DICTIONARY_PARAMS.validation == "10"

    def test_focused_column(self):
        assert FOCUSED_PARAMS.training_set_sizes == (5_000,)
        assert FOCUSED_PARAMS.target_emails == 20
        assert FOCUSED_PARAMS.attack_fractions[0] == 0.02
        assert FOCUSED_PARAMS.attack_fractions[-1] == 0.50
        assert len(FOCUSED_PARAMS.attack_fractions) == 25

    def test_roni_column(self):
        assert RONI_PARAMS.training_set_sizes == (20,)
        assert RONI_PARAMS.test_set_sizes == (50,)
        assert RONI_PARAMS.attack_fractions == (0.05,)

    def test_threshold_column(self):
        assert THRESHOLD_PARAMS.attack_fractions == (0.001, 0.01, 0.05, 0.10)
        assert THRESHOLD_PARAMS.validation == "5"

    def test_table_has_four_columns(self):
        assert len(TABLE1) == 4

    def test_as_cells_renders_every_field(self):
        cells = DICTIONARY_PARAMS.as_cells()
        assert cells["Training set size"] == "2,000, 10,000"
        assert cells["Target emails"] == "N/A"


class TestCurvePoint:
    def test_from_confusion(self):
        confusion = ConfusionCounts(ham_as_ham=8, ham_as_unsure=1, ham_as_spam=1)
        point = CurvePoint.from_confusion(0.05, confusion)
        assert point.x == 0.05
        assert point.ham_as_spam_rate == pytest.approx(0.1)
        assert point.ham_misclassified_rate == pytest.approx(0.2)

    def test_dict_roundtrip(self):
        point = CurvePoint(0.1, 0.2, 0.3, 0.4, 0.5)
        assert CurvePoint.from_dict(point.as_dict()) == point


class TestExperimentRecord:
    def _record(self) -> ExperimentRecord:
        return ExperimentRecord(
            experiment="unit-test",
            config={"size": 10},
            series=[
                Series("a", [CurvePoint(0.0, 0.1, 0.2), CurvePoint(1.0, 0.3, 0.4)]),
                Series("b", [CurvePoint(0.0, 0.0, 0.0)]),
            ],
            extras={"note": "hello"},
        )

    def test_series_named(self):
        record = self._record()
        assert record.series_named("a").points[1].x == 1.0
        with pytest.raises(ExperimentError):
            record.series_named("missing")

    def test_series_values(self):
        series = self._record().series_named("a")
        assert series.xs() == [0.0, 1.0]
        assert series.values("ham_as_spam_rate") == [0.1, 0.3]

    def test_json_roundtrip(self, tmp_path):
        record = self._record()
        path = tmp_path / "record.json"
        save_record(record, path)
        loaded = load_record(path)
        assert loaded.experiment == record.experiment
        assert loaded.config == record.config
        assert loaded.extras == record.extras
        assert loaded.series_named("a").points == record.series_named("a").points


class TestForwardCompatibility:
    """Archives written by a *newer* revision must stay loadable.

    ``ReplicatedRecord`` is exactly the field addition that motivated
    this: a loader that crashes on unknown keys turns every format
    extension into a flag day for existing archives.
    """

    def test_curve_point_ignores_unknown_keys(self):
        data = CurvePoint(0.1, 0.2, 0.3).as_dict()
        data["future_rate"] = 0.9
        data["annotation"] = 7
        assert CurvePoint.from_dict(data) == CurvePoint(0.1, 0.2, 0.3)

    def test_series_ignores_unknown_keys(self):
        data = Series("a", [CurvePoint(0.0, 0.1, 0.2)]).as_dict()
        data["points"][0]["error_bar"] = 0.01
        data["style"] = "dashed"
        loaded = Series.from_dict(data)
        assert loaded.name == "a"
        assert loaded.points == [CurvePoint(0.0, 0.1, 0.2)]

    def test_record_file_with_extra_fields_loads(self, tmp_path):
        import json

        record = ExperimentRecord(
            experiment="unit-test",
            config={"size": 10},
            series=[Series("a", [CurvePoint(0.0, 0.1, 0.2)])],
        )
        data = record.as_dict()
        data["schema_version"] = 99
        data["series"][0]["legend"] = "solid"
        data["series"][0]["points"][0]["ci95"] = 0.05
        path = tmp_path / "future.json"
        path.write_text(json.dumps(data), encoding="utf-8")
        loaded = load_record(path)
        assert loaded.series_named("a").points == record.series_named("a").points


class TestPooledStatistics:
    def _replicas(self):
        def record(rates):
            return ExperimentRecord(
                experiment="unit-test",
                config={},
                series=[
                    Series(
                        "a",
                        [CurvePoint(x=float(i), ham_as_spam_rate=rate,
                                    ham_misclassified_rate=rate * 2)
                         for i, rate in enumerate(rates)],
                    )
                ],
            )

        return [record([0.1, 0.2]), record([0.2, 0.4]), record([0.3, 0.6])]

    def test_series_stats_mean_std_ci(self):
        from repro.experiments.results import ReplicatedRecord

        pooled = ReplicatedRecord.pool(self._replicas(), config={"n_seeds": 3})
        stats = pooled.stats_named("a")
        assert stats.xs() == [0.0, 1.0]
        point = stats.points[0]
        assert point.n == 3
        rate = point.rate("ham_as_spam_rate")
        assert rate.mean == pytest.approx(0.2)
        assert rate.std == pytest.approx(0.1)  # sample std of 0.1/0.2/0.3
        # Student-t, df=2: 4.303 * 0.1 / sqrt(3)
        assert rate.ci95 == pytest.approx(4.303 * 0.1 / 3**0.5)
        # A derived rate pools independently.
        assert point.rate("ham_misclassified_rate").mean == pytest.approx(0.4)

    def test_single_replica_has_zero_spread(self):
        from repro.experiments.results import ReplicatedRecord

        pooled = ReplicatedRecord.pool(self._replicas()[:1])
        rate = pooled.stats_named("a").points[0].rate("ham_as_spam_rate")
        assert rate.mean == pytest.approx(0.1)
        assert rate.std == 0.0
        assert rate.ci95 == 0.0

    def test_mismatched_replicas_rejected(self):
        from repro.experiments.results import ReplicatedRecord, SeriesStats

        replicas = self._replicas()
        replicas[1].series[0].name = "b"
        with pytest.raises(ExperimentError):
            ReplicatedRecord.pool(replicas)
        short = self._replicas()
        short[1].series[0].points = short[1].series[0].points[:1]
        with pytest.raises(ExperimentError):
            SeriesStats.pool([record.series[0] for record in short])

    def test_replicated_record_json_roundtrip(self, tmp_path):
        from repro.experiments.results import ReplicatedRecord, load_replicated_record

        pooled = ReplicatedRecord.pool(
            self._replicas(), config={"scenario": "unit", "n_seeds": 3}
        )
        path = tmp_path / "pooled.json"
        save_record(pooled, path)
        loaded = load_replicated_record(path)
        assert loaded.as_dict() == pooled.as_dict()
        # Serialization is deterministic: saving the loaded record
        # reproduces the file byte for byte.
        path2 = tmp_path / "pooled2.json"
        save_record(loaded, path2)
        assert path2.read_bytes() == path.read_bytes()
