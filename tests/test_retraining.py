"""Tests for the multi-week retraining simulation."""

from __future__ import annotations

import pytest

from repro.errors import ExperimentError
from repro.experiments.retraining import (
    RetrainingConfig,
    run_retraining_simulation,
)


def quick_config(**overrides) -> RetrainingConfig:
    defaults = dict(
        weeks=5,
        ham_per_week=40,
        spam_per_week=40,
        attack_start_week=3,
        attack_per_week=8,
        test_size=100,
        seed=17,
    )
    defaults.update(overrides)
    return RetrainingConfig(**defaults)


class TestConfig:
    def test_invalid_weeks(self):
        with pytest.raises(ExperimentError):
            RetrainingConfig(weeks=0)

    def test_unknown_defense(self):
        with pytest.raises(ExperimentError):
            RetrainingConfig(defense="magic")

    def test_invalid_attack_start(self):
        with pytest.raises(ExperimentError):
            RetrainingConfig(attack_start_week=0)


class TestUndefendedDynamics:
    @pytest.fixture(scope="class")
    def result(self):
        return run_retraining_simulation(quick_config())

    def test_one_outcome_per_week(self, result):
        assert [w.week for w in result.weeks] == [1, 2, 3, 4, 5]

    def test_filter_healthy_before_attack(self, result):
        for outcome in result.weeks[:2]:
            assert outcome.attack_sent == 0
            assert outcome.confusion.ham_misclassified_rate < 0.1

    def test_attack_degrades_filter(self, result):
        before = result.week(2).confusion.ham_misclassified_rate
        after = result.week(5).confusion.ham_misclassified_rate
        assert after > before + 0.3

    def test_attack_messages_all_trained(self, result):
        for outcome in result.weeks:
            assert outcome.attack_trained == outcome.attack_sent
            assert outcome.attack_rejected == 0

    def test_training_set_grows_weekly(self, result):
        sizes = [w.trained_messages for w in result.weeks]
        assert sizes == sorted(sizes)
        assert sizes[0] == 80  # 40 ham + 40 spam


class TestRoniDefendedDynamics:
    @pytest.fixture(scope="class")
    def result(self):
        return run_retraining_simulation(quick_config(defense="roni"))

    def test_attack_rejected_once_calibrated(self, result):
        attacked_weeks = [w for w in result.weeks if w.attack_sent > 0]
        assert attacked_weeks
        for outcome in attacked_weeks:
            assert outcome.attack_rejected == outcome.attack_sent
            assert outcome.attack_trained == 0

    def test_filter_stays_healthy(self, result):
        assert result.final_ham_misclassification() < 0.1

    def test_no_legitimate_mail_rejected(self, result):
        assert sum(w.legitimate_rejected for w in result.weeks) == 0


class TestDeterminism:
    def test_same_seed_same_outcome(self):
        a = run_retraining_simulation(quick_config())
        b = run_retraining_simulation(quick_config())
        assert [w.confusion.as_dict() for w in a.weeks] == [
            w.confusion.as_dict() for w in b.weeks
        ]
