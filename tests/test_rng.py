"""Tests for the deterministic seed-spawning helpers."""

from __future__ import annotations

from repro.rng import DEFAULT_SEED, SeedSpawner, spawn_rng, spawn_seed


class TestSpawnSeed:
    def test_deterministic(self):
        assert spawn_seed(1, "a") == spawn_seed(1, "a")

    def test_label_sensitive(self):
        assert spawn_seed(1, "a") != spawn_seed(1, "b")

    def test_seed_sensitive(self):
        assert spawn_seed(1, "a") != spawn_seed(2, "a")

    def test_stable_across_runs(self):
        # Pinned value: guards against accidental changes to the
        # derivation, which would silently change every experiment.
        assert spawn_seed(DEFAULT_SEED, "smoke") == spawn_seed(20080415, "smoke")


class TestSpawnRng:
    def test_same_label_same_stream(self):
        a = spawn_rng(5, "x")
        b = spawn_rng(5, "x")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_different_labels_decorrelated(self):
        a = spawn_rng(5, "x")
        b = spawn_rng(5, "y")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


class TestSeedSpawner:
    def test_rng_restarts_stream(self):
        spawner = SeedSpawner(9)
        first = spawner.rng("ham").random()
        again = spawner.rng("ham").random()
        assert first == again

    def test_spawn_subtree_differs_from_parent(self):
        spawner = SeedSpawner(9)
        child = spawner.spawn("sub")
        assert child.seed != spawner.seed
        assert child.rng("x").random() != spawner.rng("x").random()

    def test_indexed_streams_independent_of_count(self):
        spawner = SeedSpawner(3)
        three = [rng.random() for rng in spawner.indexed("rep", 3)]
        five = [rng.random() for rng in spawner.indexed("rep", 5)]
        assert three == five[:3]

    def test_child_seed_matches_rng_seed(self):
        spawner = SeedSpawner(4)
        assert spawner.child_seed("z") == spawn_seed(4, "z")
