"""Tests for the RONI defense."""

from __future__ import annotations

import pytest

from repro.attacks.dictionary import AspellDictionaryAttack
from repro.defenses.base_types import DefenseVerdict
from repro.defenses.roni import RoniConfig, RoniDefense
from repro.errors import DefenseError
from repro.rng import SeedSpawner


@pytest.fixture(scope="module")
def pool(small_corpus):
    return small_corpus.dataset.sample_inbox(200, 0.5, SeedSpawner(21).rng("roni-pool"))


@pytest.fixture(scope="module")
def defense(pool):
    return RoniDefense(pool, SeedSpawner(22).rng("roni"))


class TestConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"train_size": 1},
            {"validation_size": 0},
            {"trials": 0},
            {"spam_fraction": 0.0},
            {"spam_fraction": 1.0},
            {"ham_as_ham_threshold": -1.0},
        ],
    )
    def test_invalid_config_rejected(self, kwargs):
        with pytest.raises(DefenseError):
            RoniConfig(**kwargs)

    def test_paper_defaults(self):
        config = RoniConfig()
        assert config.train_size == 20
        assert config.validation_size == 50
        assert config.trials == 5

    def test_pool_too_small_rejected(self, small_corpus):
        tiny_pool = small_corpus.dataset.subset(range(30))
        with pytest.raises(DefenseError):
            RoniDefense(tiny_pool, SeedSpawner(1).rng("x"))


class TestMeasurement:
    def test_attack_email_has_large_negative_impact(self, defense, small_corpus):
        attack = AspellDictionaryAttack.from_vocabulary(small_corpus.vocabulary)
        tokens = attack.generate(1, SeedSpawner(2).rng("a")).groups[0].training_tokens
        measurement = defense.measure_tokens(tokens, is_spam=True)
        assert measurement.ham_as_ham_decrease > 5.0

    def test_ordinary_spam_has_small_impact(self, defense, small_corpus):
        message = small_corpus.dataset.spam[3]
        measurement = defense.measure(message)
        assert measurement.ham_as_ham_decrease < 5.0

    def test_measurement_restores_baselines(self, defense, small_corpus):
        """Measuring twice must give identical results (state restored)."""
        message = small_corpus.dataset.spam[4]
        first = defense.measure(message)
        second = defense.measure(message)
        assert first == second

    def test_trials_recorded(self, defense, small_corpus):
        measurement = defense.measure(small_corpus.dataset.spam[5])
        assert measurement.trials == RoniConfig().trials


class TestVerdicts:
    def test_attack_rejected(self, defense, small_corpus):
        attack = AspellDictionaryAttack.from_vocabulary(small_corpus.vocabulary)
        tokens = attack.generate(1, SeedSpawner(3).rng("a")).groups[0].training_tokens
        verdict = defense.judge_tokens(tokens, is_spam=True)
        assert verdict.rejected
        assert verdict.verdict is DefenseVerdict.REJECT

    def test_ordinary_messages_accepted(self, defense, small_corpus):
        for message in small_corpus.dataset.spam[6:10]:
            assert not defense.judge(message).rejected
        for message in small_corpus.dataset.ham[6:10]:
            assert not defense.judge(message).rejected

    def test_filter_messages_split(self, defense, small_corpus):
        from repro.corpus.dataset import LabeledMessage
        from repro.spambayes.message import Email

        attack = AspellDictionaryAttack.from_vocabulary(small_corpus.vocabulary)
        tokens = attack.generate(1, SeedSpawner(4).rng("a")).groups[0].training_tokens
        attack_message = LabeledMessage(Email(body="", msgid="att"), True)
        attack_message._tokens = tokens
        candidates = [attack_message] + small_corpus.dataset.spam[11:14]
        accepted, rejected = defense.filter_messages(candidates)
        assert [m.msgid for m in rejected] == ["att"]
        assert len(accepted) == 3
