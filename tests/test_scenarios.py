"""Tests for the declarative scenario layer (spec, registry, executor,
CLI) introduced in PR 3.

The load-bearing contract: every historical ``run_*_experiment`` entry
point routes through :func:`repro.scenarios.run_scenario` and produces
bit-identical results to calling the protocol directly, at any worker
count — and the registry exposes at least the five paper figures plus
two cross-product scenarios.
"""

from __future__ import annotations

import json
from dataclasses import replace

import pytest

from repro.corpus.vocabulary import TINY_PROFILE
from repro.defenses.roni import RoniConfig
from repro.errors import ScenarioError
from repro.experiments.dictionary_exp import (
    DictionaryExperimentConfig,
    run_dictionary_experiment,
)
from repro.experiments.roni_exp import RoniExperimentConfig
from repro.experiments.threshold_exp import ThresholdExperimentConfig
from repro.scenarios import (
    BUILTIN_SCENARIOS,
    PROTOCOLS,
    ScenarioSpec,
    get_scenario,
    list_scenarios,
    register_builtin_scenarios,
    register_scenario,
    run_scenario,
    scenario_names,
)


def _tiny_dictionary_config(workers: int = 1) -> DictionaryExperimentConfig:
    return DictionaryExperimentConfig(
        inbox_size=120,
        folds=3,
        attack_fractions=(0.0, 0.05),
        variants=("optimal", "usenet"),
        profile=TINY_PROFILE,
        corpus_ham=120,
        corpus_spam=120,
        seed=2,
        workers=workers,
    )


TINY_RONI_OVERRIDES = dict(
    pool_size=80,
    roni=RoniConfig(train_size=10, validation_size=20, trials=2),
    n_nonattack_spam=6,
    repetitions_per_variant=2,
    profile=TINY_PROFILE,
    corpus_ham=120,
    corpus_spam=120,
)


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------


class TestRegistry:
    def test_catalogue_has_paper_figures_and_cross_products(self):
        names = set(scenario_names())
        assert len(names) >= 7
        assert {
            "figure1-dictionary",
            "figure2-focused-knowledge",
            "figure3-focused-size",
            "roni-defense",
            "figure5-threshold",
            "aspell-vs-threshold",
            "focused-vs-roni",
        } <= names

    def test_unknown_name_lists_catalogue(self):
        with pytest.raises(ScenarioError, match="figure1-dictionary"):
            get_scenario("figure9")

    def test_reregistration_is_idempotent_but_conflicts_rejected(self):
        register_builtin_scenarios()  # identical specs: no-op
        assert len(scenario_names()) == len(BUILTIN_SCENARIOS)
        conflicting = replace(
            get_scenario("figure1-dictionary"), title="something else"
        )
        with pytest.raises(ScenarioError, match="already registered"):
            register_scenario(conflicting)

    def test_every_builtin_names_a_known_protocol(self):
        for spec in list_scenarios():
            assert spec.protocol in PROTOCOLS

    def test_register_rejects_unknown_protocol(self):
        spec = ScenarioSpec(
            name="bogus-protocol",
            title="x",
            protocol="no-such-protocol",
            config_type=DictionaryExperimentConfig,
        )
        with pytest.raises(ScenarioError, match="unknown protocol"):
            register_scenario(spec)

    def test_list_scenarios_filters(self):
        gated = list_scenarios(lambda spec: "roni" in spec.defense_stack)
        assert {spec.name for spec in gated} == {
            "roni-defense",
            "focused-vs-roni",
            "stream-dictionary-vs-roni",
            "stream-focused-vs-roni",
        }


# ----------------------------------------------------------------------
# Spec / config construction
# ----------------------------------------------------------------------


class TestScenarioSpec:
    def test_defaults_are_validated_and_frozen(self):
        with pytest.raises(ScenarioError, match="unknown default"):
            ScenarioSpec(
                name="bad-defaults",
                title="x",
                protocol="dictionary-sweep",
                config_type=DictionaryExperimentConfig,
                defaults={"not_a_field": 1},
            )
        spec = get_scenario("aspell-vs-threshold")
        with pytest.raises(TypeError):
            spec.defaults["attack_variant"] = "usenet"  # mappingproxy

    def test_build_config_layers_defaults_then_overrides(self):
        spec = get_scenario("aspell-vs-threshold")
        config = spec.build_config(seed=9, workers=2, folds=4)
        assert isinstance(config, ThresholdExperimentConfig)
        assert config.attack_variant == "aspell"  # spec default
        assert (config.folds, config.seed, config.workers) == (4, 9, 2)
        overridden = spec.build_config(attack_variant="usenet")
        assert overridden.attack_variant == "usenet"

    def test_build_config_rejects_unknown_override(self):
        with pytest.raises(ScenarioError, match="unknown override"):
            get_scenario("figure1-dictionary").build_config(no_such_knob=1)

    def test_seed_and_workers_are_ordinary_override_fields(self):
        """--set seed=5 / overrides={'seed': 5} must work like any
        other field (and win over the same-named keyword)."""
        spec = get_scenario("figure1-dictionary")
        merged = spec.build_config(**{"seed": 7, "workers": 2, "folds": 2})
        assert (merged.seed, merged.workers, merged.folds) == (7, 2, 2)

    def test_validate_overrides_names_the_bad_field(self):
        with pytest.raises(ScenarioError, match="no_such_knob"):
            get_scenario("figure1-dictionary").validate_overrides({"no_such_knob": 1})


# ----------------------------------------------------------------------
# Executor
# ----------------------------------------------------------------------


class TestRunScenario:
    def test_config_and_overrides_are_mutually_exclusive(self):
        with pytest.raises(ScenarioError, match="not both"):
            run_scenario(
                "figure1-dictionary", config=_tiny_dictionary_config(), seed=1
            )

    def test_rejects_mismatched_config_type(self):
        with pytest.raises(ScenarioError, match="DictionaryExperimentConfig"):
            run_scenario("figure1-dictionary", config=RoniExperimentConfig())

    def test_driver_equals_executor_equals_direct_protocol(self, suite_workers):
        """run_*_experiment == run_scenario == the protocol function,
        record for record."""
        config = _tiny_dictionary_config(workers=suite_workers)
        via_driver = run_dictionary_experiment(config).to_record().as_dict()
        outcome = run_scenario("figure1-dictionary", config=config)
        via_protocol = PROTOCOLS["dictionary-sweep"](config).to_record().as_dict()
        assert outcome.record_dict() == via_driver == via_protocol

    def test_overrides_may_name_seed_and_workers(self):
        outcome = run_scenario(
            "figure1-dictionary",
            overrides=dict(
                inbox_size=120,
                folds=3,
                attack_fractions=(0.0, 0.05),
                variants=("optimal",),
                profile=TINY_PROFILE,
                corpus_ham=120,
                corpus_spam=120,
                seed=5,
                workers=1,
            ),
        )
        assert (outcome.config.seed, outcome.config.workers) == (5, 1)

    def test_worker_counts_agree_through_the_executor(self):
        sequential = run_scenario(
            "figure1-dictionary", config=_tiny_dictionary_config(workers=1)
        )
        parallel = run_scenario(
            "figure1-dictionary", config=_tiny_dictionary_config(workers=2)
        )
        assert sequential.record_dict() == parallel.record_dict()

    def test_focused_vs_roni_cross_product(self, suite_workers):
        """The registry's marquee composition: RONI barely sees the
        focused attack while the dictionary attack towers over spam."""
        outcome = run_scenario(
            "focused-vs-roni",
            overrides=TINY_RONI_OVERRIDES,
            seed=2,
            workers=suite_workers,
        )
        result = outcome.result
        assert set(result.attack_impacts) == {"focused", "usenet"}
        focused_mean = sum(result.attack_impacts["focused"]) / len(
            result.attack_impacts["focused"]
        )
        usenet_mean = sum(result.attack_impacts["usenet"]) / len(
            result.attack_impacts["usenet"]
        )
        assert focused_mean < usenet_mean

    def test_aspell_vs_threshold_cross_product(self, suite_workers):
        outcome = run_scenario(
            "aspell-vs-threshold",
            overrides=dict(
                inbox_size=120,
                folds=3,
                attack_fractions=(0.0, 0.05),
                quantiles=(0.10,),
                profile=TINY_PROFILE,
                corpus_ham=120,
                corpus_spam=120,
            ),
            seed=2,
            workers=suite_workers,
        )
        assert outcome.config.attack_variant == "aspell"
        assert set(outcome.result.series) == {"no-defense", "threshold-0.10"}


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


class TestScenarioCli:
    def test_list_scenarios_shows_at_least_seven(self, capsys):
        from repro.cli import main

        assert main(["list-scenarios"]) == 0
        output = capsys.readouterr().out
        listed = [line.split()[0] for line in output.splitlines() if line and not line.startswith(" ") and "registered" not in line]
        assert len(listed) >= 7
        assert "figure1-dictionary" in listed and "focused-vs-roni" in listed

    def test_run_scenario_with_set_overrides(self, tmp_path, capsys):
        from repro.cli import main

        overrides = [
            "--set", "pool_size=80",
            "--set", "n_nonattack_spam=6",
            "--set", "repetitions_per_variant=2",
            "--set", "corpus_ham=120",
            "--set", "corpus_spam=120",
            "--set", "variants=('usenet',)",
        ]
        code = main(
            ["run-scenario", "roni-defense", "--seed", "3", "--out", str(tmp_path)]
            + overrides
        )
        assert code == 0
        record = json.loads((tmp_path / "roni-defense.json").read_text())
        assert record["experiment"] == "roni-defense"
        assert (tmp_path / "roni-defense.txt").exists()
        assert "=== scenario roni-defense" in capsys.readouterr().out

    def test_run_scenario_unknown_name_fails_cleanly(self, capsys):
        from repro.cli import main

        assert main(["run-scenario", "figure9"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_run_scenario_set_seed_wins_over_flag(self, tmp_path, capsys):
        """--set seed=N must not crash and must beat --seed, as the
        help text promises."""
        from repro.cli import main

        code = main(
            ["run-scenario", "figure3-focused-size", "--seed", "0",
             "--set", "seed=9",
             "--set", "inbox_size=200", "--set", "n_targets=3",
             "--set", "repetitions=1", "--set", "attack_count=12",
             "--set", "corpus_ham=250", "--set", "corpus_spam=250",
             "--set", "size_sweep_fractions=(0.0, 0.05)",
             "--out", str(tmp_path)]
        )
        assert code == 0
        assert "seed=9" in capsys.readouterr().out
        record = json.loads((tmp_path / "figure3-focused-size.json").read_text())
        assert record["config"]["seed"] == 9

    def test_run_scenario_bad_set_values_fail_cleanly(self, capsys):
        """A --set typo exits 2 with the field listing on every --scale
        path, and type-invalid seed/workers values get diagnostics, not
        tracebacks."""
        from repro.cli import main

        assert main(["run-scenario", "figure1-dictionary", "--set", "typo=1"]) == 2
        assert "unknown override" in capsys.readouterr().err
        assert (
            main(
                ["run-scenario", "figure1-dictionary", "--scale", "paper",
                 "--set", "typo=1"]
            )
            == 2
        )
        assert "unknown override" in capsys.readouterr().err
        assert main(["run-scenario", "figure1-dictionary", "--set", "workers=abc"]) == 2
        assert "workers must be an integer" in capsys.readouterr().err
        assert main(["run-scenario", "figure1-dictionary", "--set", "seed=abc"]) == 2
        assert "seed must be an integer" in capsys.readouterr().err
