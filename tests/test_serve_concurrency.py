"""Concurrency proofs for the serve layer.

Two properties make concurrent serving trustworthy:

* **Writer serialization** — mutations from any number of clients
  apply one at a time, each stamped with a global sequence number, and
  every score names the mutation count (``model_seq``) it was computed
  under.  That makes a concurrent session *replayable*: apply the
  mutations to a library classifier in ``seq`` order, evaluate each
  scored message at its ``model_seq`` checkpoint, and every float must
  match — which is exactly what :class:`TestSequentialReplay` does.
* **Demultiplexing fidelity** — the micro-batcher may fuse dozens of
  requests into one bulk call, but each response must carry *its own*
  request's answer.  The seeded property test gives every request a
  distinguishable token set and checks each reply against the library
  score for that exact set, under heavy coalescing.
"""

from __future__ import annotations

import asyncio
import random
import threading

import pytest

from repro.rng import SeedSpawner
from repro.serve import MicroBatcher, ServeClient, ServeConfig, serve_in_thread
from repro.spambayes import ndkernel
from repro.storage import STORE_DIR_ENV


@pytest.fixture(autouse=True)
def _rooted_store_dir(tmp_path, monkeypatch):
    monkeypatch.setenv(STORE_DIR_ENV, str(tmp_path))


@pytest.fixture(scope="module")
def messages(tiny_corpus):
    rng = SeedSpawner(404).rng("serve-concurrency")
    inbox = tiny_corpus.dataset.sample_inbox(80, 0.5, rng)
    return [(sorted(m.tokens()), m.is_spam) for m in inbox]


class TestSequentialReplay:
    CLIENTS = 6
    OPS_PER_CLIENT = 12

    def _client_session(self, address, seed, pool, log):
        rng = random.Random(seed)
        with ServeClient(address) as client:
            last_seq = 0
            for _ in range(self.OPS_PER_CLIENT):
                tokens, is_spam = pool[rng.randrange(len(pool))]
                if rng.random() < 0.5:
                    reply = client.feedback(tokens, is_spam)
                    log.append(("mutate", reply["seq"], tokens, is_spam))
                    last_seq = reply["seq"]
                else:
                    reply = client.score_response(tokens)
                    # A client's own prior mutations are visible to its
                    # later scores (it awaited their replies first).
                    assert reply["model_seq"] >= last_seq
                    log.append(("score", reply["model_seq"], tokens, reply["score"]))

    def test_concurrent_session_equals_sequential_replay(self, tmp_path, messages):
        config = ServeConfig(
            socket_path=str(tmp_path / "serve.sock"), batch_window_ms=5.0
        )
        logs = [[] for _ in range(self.CLIENTS)]
        with serve_in_thread(config) as service:
            # Seed some baseline training so scores are non-degenerate.
            with ServeClient(service.address) as client:
                for tokens, is_spam in messages[:20]:
                    client.train(tokens, is_spam)
                base_seq = client.stats()["seq"]
            threads = [
                threading.Thread(
                    target=self._client_session,
                    args=(service.address, 1000 + index, messages[20:], logs[index]),
                )
                for index in range(self.CLIENTS)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

        mutations = sorted(
            (entry for log in logs for entry in log if entry[0] == "mutate"),
            key=lambda entry: entry[1],
        )
        scores = sorted(
            (entry for log in logs for entry in log if entry[0] == "score"),
            key=lambda entry: entry[1],
        )
        # Sequence numbers are a gapless permutation: one global writer
        # applied exactly one mutation per number.
        assert [seq for _, seq, _, _ in mutations] == list(
            range(base_seq + 1, base_seq + 1 + len(mutations))
        )

        # Replay: rebuild each observed model state sequentially and
        # demand every score matches its checkpoint, byte for byte.
        classifier = ndkernel.create_classifier()
        for tokens, is_spam in messages[:20]:
            classifier.learn(tokens, is_spam)
        by_state: dict[int, list[tuple[list, float]]] = {}
        for _, model_seq, tokens, served in scores:
            by_state.setdefault(model_seq, []).append((tokens, served))
        cursor = base_seq
        for group_seq in sorted(by_state):
            while cursor < group_seq:
                _, seq, tokens, is_spam = mutations[cursor - base_seq]
                classifier.learn(tokens, is_spam)
                cursor = seq
            for tokens, served in by_state[group_seq]:
                assert classifier.score(tokens) == served

    def test_writer_preserves_one_connections_order(self, tmp_path, messages):
        """Pipelined mutations from one connection apply in frame
        order: reply seqs come back strictly increasing."""
        config = ServeConfig(
            socket_path=str(tmp_path / "serve.sock"), batch_window_ms=5.0
        )
        with serve_in_thread(config) as service:
            with ServeClient(service.address) as client:
                ids = [
                    client.send("train", tokens=tokens, is_spam=is_spam)
                    for tokens, is_spam in messages[:30]
                ]
                seqs = [client.recv(request_id)["seq"] for request_id in ids]
        assert seqs == list(range(1, 31))


class TestCoalescingNeverCrossWires:
    @pytest.mark.parametrize("seed", [11, 29, 83])
    def test_demultiplexed_responses_match_per_request_scores(
        self, tmp_path, messages, seed
    ):
        """Heavy coalescing, distinguishable requests: every reply must
        carry the score of *its* token set, verified against the
        library, and batches must actually have formed (the property
        is vacuous for batch size 1)."""
        rng = random.Random(seed)
        pool = [tokens for tokens, _ in messages]
        # Distinct probe per request: a random message plus a unique
        # marker token, so any cross-wiring changes the float.
        probes = [
            sorted(pool[rng.randrange(len(pool))] + [f"probe-{seed}-{i}"])
            for i in range(40)
        ]
        reference = ndkernel.create_classifier()
        for tokens, is_spam in messages[:20]:
            reference.learn(tokens, is_spam)
        expected = reference.score_many(probes)

        config = ServeConfig(
            socket_path=str(tmp_path / "serve.sock"), batch_window_ms=25.0
        )
        with serve_in_thread(config) as service:
            with ServeClient(service.address) as client:
                for tokens, is_spam in messages[:20]:
                    client.train(tokens, is_spam)
                ids = [client.send("score", tokens=probe) for probe in probes]
                # Collect deliberately out of request order.
                shuffled = ids[:]
                rng.shuffle(shuffled)
                by_id = {rid: client.recv(rid) for rid in shuffled}
            responses = [by_id[rid] for rid in ids]
        assert max(r["batch"] for r in responses) > 1
        assert [r["score"] for r in responses] == expected

    def test_concurrent_clients_each_get_their_own_answer(
        self, tmp_path, messages
    ):
        """Clients hammering distinct probes through shared batches all
        get exactly their own library float back."""
        reference = ndkernel.create_classifier()
        for tokens, is_spam in messages[:20]:
            reference.learn(tokens, is_spam)

        config = ServeConfig(
            socket_path=str(tmp_path / "serve.sock"), batch_window_ms=10.0
        )
        results: dict[int, list[float]] = {}
        probes: dict[int, list] = {
            index: [
                sorted(messages[20 + index][0] + [f"client-{index}-{j}"])
                for j in range(10)
            ]
            for index in range(8)
        }

        def session(index):
            with ServeClient(address) as client:
                results[index] = [client.score(probe) for probe in probes[index]]

        with serve_in_thread(config) as service:
            address = service.address
            with ServeClient(address) as client:
                for tokens, is_spam in messages[:20]:
                    client.train(tokens, is_spam)
            threads = [
                threading.Thread(target=session, args=(index,)) for index in range(8)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            with ServeClient(address) as client:
                batching = client.stats()["batching"]
        assert batching["max_batch"] > 1  # coalescing actually happened
        for index in range(8):
            assert results[index] == reference.score_many(probes[index])


class TestBatcherFailureContracts:
    """The micro-batcher's promises when the bulk call goes wrong.

    Driven directly (no daemon): these are the contracts the service
    relies on so that one poisoned batch fails its own requests with
    envelopes instead of wedging or crashing the drain loop.
    """

    @staticmethod
    def _run(coro):
        return asyncio.run(coro)

    def test_window_zero_forces_single_request_batches(self):
        async def scenario():
            calls = []

            async def execute(items):
                calls.append(list(items))
                return list(items)

            batcher = MicroBatcher(execute, window_s=0.0, max_batch=64)
            assert batcher.max_batch == 1
            batcher.start()
            futures = [batcher.submit(n) for n in range(5)]
            assert await asyncio.gather(*futures) == list(range(5))
            assert all(len(call) == 1 for call in calls)
            await batcher.close()

        self._run(scenario())

    def test_bulk_failure_fans_out_to_every_future(self):
        async def scenario():
            async def execute(items):
                raise ValueError("kernel rejected the batch")

            batcher = MicroBatcher(execute, window_s=0.001)
            batcher.start()
            futures = [batcher.submit(n) for n in range(3)]
            results = await asyncio.gather(*futures, return_exceptions=True)
            assert all(
                isinstance(r, ValueError) and "rejected" in str(r)
                for r in results
            )
            await batcher.close()

        self._run(scenario())

    def test_result_count_mismatch_fails_the_batch(self):
        async def scenario():
            async def execute(items):
                return list(items)[:-1]  # one result short

            batcher = MicroBatcher(execute, window_s=0.001)
            batcher.start()
            futures = [batcher.submit(n) for n in range(3)]
            results = await asyncio.gather(*futures, return_exceptions=True)
            assert all(isinstance(r, RuntimeError) for r in results)
            await batcher.close()

        self._run(scenario())

    def test_close_cancels_queued_work_and_refuses_new(self):
        async def scenario():
            async def execute(items):
                return list(items)

            batcher = MicroBatcher(execute, window_s=60.0)  # never drains
            batcher.start()
            future = batcher.submit("stranded")
            await batcher.close()
            with pytest.raises(asyncio.CancelledError):
                future.result()
            with pytest.raises(RuntimeError, match="closed"):
                batcher.submit("too late")

        self._run(scenario())

    def test_rejects_nonpositive_max_batch(self):
        with pytest.raises(ValueError, match="max_batch"):
            MicroBatcher(lambda items: items, max_batch=0)
