"""Serve differentials: wire scores must be byte-identical to library
scoring, across every kernel x storage backend combination.

The daemon's whole value rests on one equivalence: a score obtained
over the socket — possibly coalesced into a bulk kernel call with
other clients' messages, possibly computed in a supervised worker
process — is the *same float* ``Classifier.score`` returns for the
same message against the same training state.  JSON round-trips IEEE
doubles exactly (``float(repr(x)) == x``), so the comparison below is
``==`` on floats, not approx.
"""

from __future__ import annotations

import os
from contextlib import contextmanager

import pytest

from repro.rng import SeedSpawner
from repro.serve import ServeClient, ServeConfig, serve_in_thread
from repro.spambayes import ndkernel
from repro.storage import STORE_DIR_ENV, STORE_ENV

KERNELS = ("python", "nd") if ndkernel.available() else ("python",)
STORES = ("memory", "disk")


@contextmanager
def _env(var: str, value: str):
    previous = os.environ.get(var)
    os.environ[var] = value
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop(var, None)
        else:
            os.environ[var] = previous


@pytest.fixture(autouse=True)
def _rooted_store_dir(tmp_path, monkeypatch):
    # Root any disk backend this test lazily creates under pytest's
    # tmp tree (see test_storage_differential for the caching caveat).
    monkeypatch.setenv(STORE_DIR_ENV, str(tmp_path))


@pytest.fixture(scope="module")
def workload(tiny_corpus):
    """A deterministic train/score split of the tiny corpus.

    Token lists (sorted — ``tokens()`` is a frozenset and JSON needs a
    sequence) rather than message objects, because that is exactly
    what crosses the wire.
    """
    rng = SeedSpawner(2008).rng("serve-differential")
    inbox = tiny_corpus.dataset.sample_inbox(60, 0.5, rng)
    train = [(sorted(m.tokens()), m.is_spam) for m in inbox[:40]]
    score = [sorted(m.tokens()) for m in inbox[40:]]
    return train, score


def _library_scores(train, score):
    classifier = ndkernel.create_classifier()
    for tokens, is_spam in train:
        classifier.learn(tokens, is_spam)
    return classifier.score_many(score)


def _served_scores(tmp_path, train, score, *, batch_window_ms, pipelined=False):
    config = ServeConfig(
        socket_path=str(tmp_path / "serve.sock"), batch_window_ms=batch_window_ms
    )
    with serve_in_thread(config) as service:
        with ServeClient(service.address) as client:
            for tokens, is_spam in train:
                client.train(tokens, is_spam)
            if pipelined:
                # All requests in flight at once: the window coalesces
                # them into genuinely multi-message bulk calls.
                ids = [client.send("score", tokens=tokens) for tokens in score]
                responses = [client.recv(request_id) for request_id in ids]
                assert max(r["batch"] for r in responses) > 1
                return [r["score"] for r in responses]
            return [client.score(tokens) for tokens in score]


class TestWireMatchesLibrary:
    @pytest.mark.parametrize("kernel", KERNELS)
    @pytest.mark.parametrize("store", STORES)
    def test_scores_byte_identical(self, tmp_path, workload, kernel, store):
        train, score = workload
        with _env(ndkernel.KERNEL_ENV, kernel), _env(STORE_ENV, store):
            expected = _library_scores(train, score)
            served = _served_scores(tmp_path, train, score, batch_window_ms=0.0)
        assert served == expected

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_coalesced_scores_byte_identical(self, tmp_path, workload, kernel):
        """The batched path — many messages per bulk call — returns the
        same floats as the unbatched path and the library."""
        train, score = workload
        with _env(ndkernel.KERNEL_ENV, kernel):
            expected = _library_scores(train, score)
            served = _served_scores(
                tmp_path, train, score, batch_window_ms=25.0, pipelined=True
            )
        assert served == expected

    def test_pooled_scores_byte_identical(self, tmp_path, workload):
        """Worker-pool scoring (the supervised path) changes where the
        floats are computed, never what they are."""
        train, score = workload
        expected = _library_scores(train, score)
        config = ServeConfig(
            socket_path=str(tmp_path / "serve.sock"),
            batch_window_ms=10.0,
            workers=2,
        )
        with serve_in_thread(config) as service:
            with ServeClient(service.address) as client:
                for tokens, is_spam in train:
                    client.train(tokens, is_spam)
                ids = [client.send("score", tokens=tokens) for tokens in score]
                served = [client.recv(request_id)["score"] for request_id in ids]
        assert served == expected


class TestMutationSequenceMatchesLibrary:
    @pytest.mark.parametrize("store", STORES)
    def test_train_score_feedback_score(self, tmp_path, workload, store):
        """An interleaved train -> score -> feedback -> score session
        equals the identical library call sequence, state for state."""
        train, score = workload
        probe = score[0]
        with _env(STORE_ENV, store):
            classifier = ndkernel.create_classifier()
            expected = []
            for index, (tokens, is_spam) in enumerate(train):
                classifier.learn(tokens, is_spam)
                if index % 7 == 0:
                    expected.append(classifier.score(probe))
            classifier.learn(probe, True)  # the feedback correction
            expected.append(classifier.score(probe))

            config = ServeConfig(
                socket_path=str(tmp_path / "serve.sock"), batch_window_ms=0.0
            )
            with serve_in_thread(config) as service:
                with ServeClient(service.address) as client:
                    served = []
                    for index, (tokens, is_spam) in enumerate(train):
                        reply = client.train(tokens, is_spam)
                        assert reply["seq"] == index + 1
                        if index % 7 == 0:
                            served.append(client.score(probe))
                    client.feedback(probe, True)
                    served.append(client.score(probe))
        assert served == expected

    def test_model_seq_tracks_training_state(self, tmp_path, workload):
        """Every score reply names the exact mutation count it was
        computed under — the stamp the replay proof keys on."""
        train, score = workload
        config = ServeConfig(
            socket_path=str(tmp_path / "serve.sock"), batch_window_ms=0.0
        )
        with serve_in_thread(config) as service:
            with ServeClient(service.address) as client:
                for count, (tokens, is_spam) in enumerate(train[:5], start=1):
                    client.train(tokens, is_spam)
                    reply = client.score_response(score[0])
                    assert reply["model_seq"] == count
