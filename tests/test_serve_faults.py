"""Fault injection against the serving layer.

The daemon inherits PR 7's supervision contract: with
``REPRO_FAULTS=crash:p=...`` ambient, worker processes scoring a batch
die mid-chunk, the supervised pool respawns and retries them, and
after the retry budget the batch degrades to inline scoring — all
invisible to clients, who receive exactly the floats the clean
reference produces.  Faults only fire inside marked worker processes
(:func:`repro.engine.faults.mark_worker_process`), so the library
reference computed in this test process is clean by construction even
while the env var is set.
"""

from __future__ import annotations

import pytest

from repro.rng import SeedSpawner
from repro.serve import ServeClient, ServeConfig, serve_in_thread
from repro.spambayes import ndkernel
from repro.storage import STORE_DIR_ENV


@pytest.fixture(autouse=True)
def _rooted_store_dir(tmp_path, monkeypatch):
    monkeypatch.setenv(STORE_DIR_ENV, str(tmp_path))


@pytest.fixture(scope="module")
def workload(tiny_corpus):
    rng = SeedSpawner(777).rng("serve-faults")
    inbox = tiny_corpus.dataset.sample_inbox(70, 0.5, rng)
    train = [(sorted(m.tokens()), m.is_spam) for m in inbox[:30]]
    score = [sorted(m.tokens()) for m in inbox[30:]]
    return train, score


def _clean_reference(train, score):
    classifier = ndkernel.create_classifier()
    for tokens, is_spam in train:
        classifier.learn(tokens, is_spam)
    return classifier.score_many(score)


def _serve_under_faults(tmp_path, train, score):
    config = ServeConfig(
        socket_path=str(tmp_path / "serve.sock"),
        batch_window_ms=10.0,
        workers=2,
    )
    with serve_in_thread(config) as service:
        with ServeClient(service.address) as client:
            for tokens, is_spam in train:
                client.train(tokens, is_spam)
            ids = [client.send("score", tokens=tokens) for tokens in score]
            served = [client.recv(request_id)["score"] for request_id in ids]
            stats = client.stats()
    return served, stats


class TestCrashInjection:
    def test_scores_identical_under_ambient_crashes(
        self, tmp_path, monkeypatch, workload
    ):
        """``crash:p=0.2``: enough worker deaths to exercise respawn
        and retry, zero effect on the bytes clients receive."""
        monkeypatch.setenv("REPRO_FAULTS", "crash:p=0.2,seed=7")
        train, score = workload
        expected = _clean_reference(train, score)
        served, stats = _serve_under_faults(tmp_path, train, score)
        assert served == expected
        # The suite proves nothing if injection silently stopped
        # firing: supervision must have actually recovered something.
        supervision = stats["supervision"]
        assert supervision["crashes"] > 0
        assert supervision["respawns"] > 0

    def test_scores_identical_when_every_attempt_crashes(
        self, tmp_path, monkeypatch, workload
    ):
        """``crash:p=1``: the retry budget always exhausts and every
        batch degrades to inline scoring in the daemon — the terminal
        recovery path — still byte-identical, daemon still alive."""
        monkeypatch.setenv("REPRO_FAULTS", "crash:p=1,seed=3")
        train, score = workload
        probes = score[:8]
        expected = _clean_reference(train, probes)
        served, stats = _serve_under_faults(tmp_path, train, probes)
        assert served == expected
        supervision = stats["supervision"]
        assert supervision["degraded_chunks"] > 0
        assert supervision["crashes"] > 0

    def test_supervision_counters_surface_in_stats(
        self, tmp_path, monkeypatch, workload
    ):
        """Ops-facing observability: a pooled daemon reports the full
        supervision ledger over the wire."""
        monkeypatch.setenv("REPRO_FAULTS", "crash:p=0.2,seed=7")
        train, score = workload
        _, stats = _serve_under_faults(tmp_path, train, score[:10])
        assert set(stats["supervision"]) == {
            "crashes",
            "timeouts",
            "segment_losses",
            "respawns",
            "retried_chunks",
            "degraded_chunks",
        }

    def test_inline_daemon_ignores_fault_plan(
        self, tmp_path, monkeypatch, workload
    ):
        """``workers=1`` scoring never enters a worker process, so the
        ambient plan cannot touch it — the clean-reference arm the
        differential above leans on, pinned explicitly."""
        monkeypatch.setenv("REPRO_FAULTS", "crash:p=1,seed=3")
        train, score = workload
        probes = score[:5]
        expected = _clean_reference(train, probes)
        config = ServeConfig(
            socket_path=str(tmp_path / "serve.sock"), batch_window_ms=0.0
        )
        with serve_in_thread(config) as service:
            with ServeClient(service.address) as client:
                for tokens, is_spam in train:
                    client.train(tokens, is_spam)
                served = [client.score(tokens) for tokens in probes]
                assert "supervision" not in client.stats()
        assert served == expected
