"""Negative-path coverage for the serve protocol.

A serving layer's exploitable surface is its input handling, so every
malformed thing a client can put on the wire — truncated frames,
hostile length prefixes, garbage JSON, unknown verbs, vanishing peers
— must produce a one-line structured error envelope (the wire twin of
the CLI's ``error: ...`` / exit-2 convention) and leave the daemon
serving.  And a clean ``shutdown`` must leave *nothing* behind: no
socket file, no shared-memory segments, no on-disk stores — ``repro
gc`` finds zero orphans.
"""

from __future__ import annotations

import os
import socket
import struct
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.errors import ConfigurationError, ServeError
from repro.serve import ServeClient, ServeConfig, connect, serve_in_thread
from repro.serve import protocol
from repro.storage import STORE_DIR_ENV, STORE_ENV, orphaned_stores

SRC = str(Path(__file__).resolve().parent.parent / "src")


@pytest.fixture(autouse=True)
def _rooted_store_dir(tmp_path, monkeypatch):
    monkeypatch.setenv(STORE_DIR_ENV, str(tmp_path))


@pytest.fixture()
def service(tmp_path):
    config = ServeConfig(
        socket_path=str(tmp_path / "serve.sock"), batch_window_ms=1.0
    )
    with serve_in_thread(config) as svc:
        yield svc


def _raw_connection(service) -> socket.socket:
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    sock.settimeout(10.0)
    sock.connect(service.address)
    return sock


def _assert_alive(service) -> None:
    """The invariant every abuse case must leave standing."""
    with ServeClient(service.address) as client:
        assert client.ping()["pong"] is True


class TestConfigValidation:
    def test_needs_exactly_one_endpoint(self):
        with pytest.raises(ConfigurationError):
            ServeConfig()
        with pytest.raises(ConfigurationError):
            ServeConfig(socket_path="/tmp/x.sock", port=9999)

    def test_rejects_bad_values(self):
        with pytest.raises(ConfigurationError):
            ServeConfig(port=70000)
        with pytest.raises(ConfigurationError):
            ServeConfig(port=0, batch_window_ms=-1.0)
        with pytest.raises(ConfigurationError):
            ServeConfig(port=0, workers=-1)
        with pytest.raises(ConfigurationError):
            ServeConfig(port=0, max_batch=0)

    def test_refuses_existing_socket_path(self, tmp_path):
        path = tmp_path / "taken.sock"
        path.write_text("")
        config = ServeConfig(socket_path=str(path))
        with pytest.raises(ServeError, match="already exists"):
            with serve_in_thread(config):
                pass  # pragma: no cover - never reached


class TestMalformedPayloads:
    def test_garbage_json_gets_envelope_and_connection_survives(self, service):
        with _raw_connection(service) as sock:
            body = b"this is not json"
            sock.sendall(protocol.HEADER.pack(len(body)) + body)
            reply = protocol.recv_frame(sock)
            assert reply["ok"] is False
            assert reply["id"] is None
            assert "\n" not in reply["error"]
            # Framing survived: the same connection still serves.
            protocol.send_frame(sock, {"id": 7, "verb": "ping"})
            assert protocol.recv_frame(sock) == {"id": 7, "ok": True, "pong": True}
        _assert_alive(service)

    def test_non_object_json_gets_envelope(self, service):
        with _raw_connection(service) as sock:
            body = b"[1, 2, 3]"
            sock.sendall(protocol.HEADER.pack(len(body)) + body)
            reply = protocol.recv_frame(sock)
            assert reply["ok"] is False
            assert "JSON object" in reply["error"]
        _assert_alive(service)

    def test_empty_frame_gets_envelope(self, service):
        with _raw_connection(service) as sock:
            sock.sendall(protocol.HEADER.pack(0))
            reply = protocol.recv_frame(sock)
            assert reply["ok"] is False
            assert "empty frame" in reply["error"]
        _assert_alive(service)


class TestBadRequests:
    @pytest.mark.parametrize(
        "request_payload, fragment",
        [
            ({"id": 1, "verb": "frobnicate"}, "unknown verb"),
            ({"id": 2}, "unknown verb"),
            ({"id": 3, "verb": "score"}, "list of strings"),
            ({"id": 4, "verb": "score", "tokens": "abc"}, "list of strings"),
            ({"id": 5, "verb": "score", "tokens": [1, 2]}, "list of strings"),
            ({"id": 6, "verb": "train", "tokens": ["a"]}, "is_spam"),
            (
                {"id": 7, "verb": "feedback", "tokens": ["a"], "is_spam": "yes"},
                "is_spam",
            ),
            ({"id": 8, "verb": "snapshot"}, "path"),
            ({"id": 9, "verb": "snapshot", "path": ""}, "path"),
        ],
    )
    def test_structured_error_echoes_id_and_keeps_serving(
        self, service, request_payload, fragment
    ):
        with _raw_connection(service) as sock:
            protocol.send_frame(sock, request_payload)
            reply = protocol.recv_frame(sock)
            assert reply["ok"] is False
            assert reply["id"] == request_payload["id"]
            assert fragment in reply["error"]
            assert "\n" not in reply["error"]
            protocol.send_frame(sock, {"id": 99, "verb": "ping"})
            assert protocol.recv_frame(sock)["ok"] is True
        _assert_alive(service)

    def test_snapshot_failure_is_an_envelope_not_a_crash(self, service, tmp_path):
        with ServeClient(service.address) as client:
            with pytest.raises(ServeError):
                client.snapshot(str(tmp_path / "no-such-dir" / "x" / "model.json"))
        _assert_alive(service)


class TestFramingAbuse:
    def test_oversized_frame_is_refused_with_envelope(self, service):
        with _raw_connection(service) as sock:
            sock.sendall(protocol.HEADER.pack(protocol.MAX_FRAME_BYTES + 1))
            reply = protocol.recv_frame(sock)
            assert reply["ok"] is False
            assert "cap" in reply["error"]
            # The stream is unrecoverable; the daemon closes it.
            assert sock.recv(1) == b""
        _assert_alive(service)

    def test_truncated_header_then_disconnect(self, service):
        with _raw_connection(service) as sock:
            sock.sendall(b"\x00\x00")  # half a header, then gone
        time.sleep(0.05)
        _assert_alive(service)

    def test_truncated_body_then_disconnect(self, service):
        with _raw_connection(service) as sock:
            sock.sendall(protocol.HEADER.pack(500) + b"only a little")
        time.sleep(0.05)
        _assert_alive(service)

    def test_disconnect_before_reading_reply(self, service):
        # A full, valid request whose sender vanishes before the
        # response: the write fails into a suppressed error, not a
        # daemon death.
        with _raw_connection(service) as sock:
            protocol.send_frame(
                sock, {"id": 1, "verb": "score", "tokens": ["a", "b"]}
            )
        time.sleep(0.05)
        _assert_alive(service)

    def test_many_abusive_connections_in_a_row(self, service):
        for round_index in range(10):
            with _raw_connection(service) as sock:
                sock.sendall(struct.pack(">I", 99999999))
        _assert_alive(service)


class TestShutdownLeavesNothing:
    def test_in_process_shutdown_is_clean(self, tmp_path, monkeypatch):
        monkeypatch.setenv(STORE_ENV, "disk")
        socket_path = tmp_path / "serve.sock"
        config = ServeConfig(socket_path=str(socket_path), batch_window_ms=1.0)
        with serve_in_thread(config) as service:
            with ServeClient(service.address) as client:
                client.train(["cheap", "pills"], True)
                assert client.score(["cheap"]) > 0
                client.shutdown()
            service.stopped.wait(timeout=10.0)
        assert not socket_path.exists()
        # Nothing orphaned for the janitor: this process is alive, so
        # its own store is live, and the daemon made no others.
        assert orphaned_stores() == []

    @pytest.mark.slow
    def test_cli_daemon_shutdown_leaves_no_orphans(self, tmp_path):
        """The full lifecycle as ops would see it: spawn `repro serve`
        with a disk store, use it, shut it down over the wire, then
        prove `repro gc` has nothing to reclaim."""
        env = os.environ.copy()
        env[STORE_ENV] = "disk"
        env[STORE_DIR_ENV] = str(tmp_path)
        env["PYTHONPATH"] = SRC + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        socket_path = tmp_path / "daemon.sock"
        daemon = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                "--socket",
                str(socket_path),
                "--batch-window",
                "1",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=env,
        )
        try:
            assert "serving on" in daemon.stdout.readline()
            with ServeClient(str(socket_path)) as client:
                client.train(["cheap", "pills"], True)
                client.score(["cheap", "meeting"])
                client.shutdown()
            assert daemon.wait(timeout=15.0) == 0
        finally:
            if daemon.poll() is None:  # pragma: no cover - failure path
                daemon.kill()
                daemon.wait()
        assert not socket_path.exists()
        # The daemon's disk store died with the daemon (atexit), so the
        # janitor must find zero orphans of any kind.
        gc = subprocess.run(
            [sys.executable, "-m", "repro", "gc"],
            capture_output=True,
            text=True,
            env=env,
        )
        assert gc.returncode == 0, gc.stderr
        assert "0 segment(s) and 0 store(s) reclaimed" in gc.stdout
        assert not list(tmp_path.glob("repro_store_*"))


class TestClientEdges:
    """The blocking client's own failure and transport paths."""

    def test_tcp_serving_end_to_end(self, tmp_path):
        """``--port 0``: the OS picks, the announced address serves —
        the transport the benchmark and remote clients use."""
        config = ServeConfig(port=0, batch_window_ms=1.0)
        with serve_in_thread(config) as svc:
            host, port = svc.address
            assert host == "127.0.0.1" and port > 0
            with connect((host, port)) as client:
                assert client.ping()["pong"] is True
                client.train(["cheap", "pills"], True)
                assert isinstance(client.score(["cheap", "meeting"]), float)

    def test_connect_failure_is_one_serve_error(self, tmp_path):
        with pytest.raises(ServeError, match="cannot connect"):
            ServeClient(str(tmp_path / "nobody-home.sock"))
        with pytest.raises(ServeError, match="cannot connect"):
            ServeClient(("127.0.0.1", 1))  # reserved port, nothing listens

    def test_recv_any_drains_buffered_responses(self, service):
        """Pipelined callers take replies in whatever order they land."""
        with ServeClient(service.address) as client:
            first = client.send("ping")
            second = client.send("ping")
            got = {client.recv_any()["id"] for _ in range(2)}
            assert got == {first, second}

    def test_peer_disappearing_mid_read_is_a_serve_error(self, service):
        """The daemon closing (here: shutdown) surfaces as ServeError,
        not a raw socket exception, on the next blocking read."""
        with ServeClient(service.address) as client:
            client.shutdown()
            with pytest.raises(ServeError, match="filter service"):
                client.request("ping")

    def test_send_on_dead_socket_is_a_serve_error(self, service):
        client = ServeClient(service.address)
        client.close()
        with pytest.raises(ServeError, match="cannot send"):
            client.ping()

    def test_oversized_reply_header_rejected_client_side(self, service):
        """The frame cap cuts both ways: a hostile *server* length
        prefix trips the client's own guard before any allocation."""
        left, right = socket.socketpair()
        try:
            right.sendall(struct.pack(">I", protocol.MAX_FRAME_BYTES + 1))
            with pytest.raises(protocol.ProtocolError, match="exceeds"):
                protocol.recv_frame(left)
        finally:
            left.close()
            right.close()
