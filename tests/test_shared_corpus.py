"""Property tests for the shared-memory corpus transport.

The contract under test (``repro.engine.sharedmem``):

* a published corpus round-trips exactly — the pickled handle is tiny,
  workers (or a re-attached handle in this process) read back the same
  rows, zero-copy;
* attached views are **read-only** — a worker cannot scribble on the
  corpus other workers are scoring;
* segments never leak — unlink-on-pool-shutdown, explicit unlink, and
  the atexit backstop all remove the ``/dev/shm`` name, and every test
  here runs under a leak detector that scans the run-unique prefix in
  teardown;
* when shared memory is unavailable the layer degrades to ordinary
  pickling through a ``ReproError``-mediated fallback, with identical
  data on the other side.

Plus the WorkerPool tiny-map regression (BENCH_stream 0.98x): maps of
a single task skip the chunk-blob protocol, and the pooled path's
records stay byte-identical to sequential execution.
"""

from __future__ import annotations

import json
import os
import pickle
import signal

import pytest

np = pytest.importorskip("numpy")

from repro.engine import sharedmem
from repro.engine.runner import ParallelRunner, WorkerPool, use_worker_pool
from repro.errors import EngineError, ReproError
from repro.spambayes.ndkernel import CsrMatrix


@pytest.fixture(autouse=True)
def no_leaked_segments():
    """Fail any test that leaves a segment under the run-unique prefix."""
    yield
    prefix = sharedmem.segment_prefix()
    leaked = sorted(
        name for name in os.listdir("/dev/shm") if name.startswith(prefix)
    ) if os.path.isdir("/dev/shm") else []
    if leaked:
        # Clean up before failing so one leak doesn't cascade.
        sharedmem.unlink_all_segments()
        for name in leaked:
            path = os.path.join("/dev/shm", name)
            if os.path.exists(path):  # pragma: no cover - unlink_all missed it
                os.unlink(path)
    assert leaked == [], f"leaked shared-memory segments: {leaked}"


def _corpus_rows(n: int = 6) -> list:
    return [np.arange(i, 2 * i + 1, dtype=np.int64) for i in range(n)]


def _make_csr(n: int = 6) -> CsrMatrix:
    return CsrMatrix.from_rows(_corpus_rows(n))


# ----------------------------------------------------------------------
# Publish / attach round-trips
# ----------------------------------------------------------------------


class TestRoundTrip:
    def test_handle_pickles_in_bytes_and_rows_round_trip(self):
        csr = _make_csr()
        handle = sharedmem.SharedCorpus.publish(csr)
        try:
            blob = pickle.dumps(handle, protocol=pickle.HIGHEST_PROTOCOL)
            # The whole point of the transport: a corpus handle is a
            # name plus two lengths, not the corpus.
            assert len(blob) < 200
            attached = pickle.loads(blob)
            assert not attached.owner
            assert len(attached) == len(csr)
            got = [row.tolist() for row in attached.as_csr().rows()]
            want = [row.tolist() for row in csr.rows()]
            assert got == want
            del got
            attached.close()
        finally:
            handle.unlink()

    def test_empty_corpus_round_trips(self):
        csr = CsrMatrix.from_rows([])
        handle = sharedmem.SharedCorpus.publish(csr)
        try:
            attached = pickle.loads(pickle.dumps(handle))
            assert len(attached) == 0
            assert list(attached.as_csr().rows()) == []
            attached.close()
        finally:
            handle.unlink()

    def test_rows_list_is_cached_and_identical(self):
        handle = sharedmem.SharedCorpus.publish(_make_csr())
        try:
            first = handle.rows_list()
            second = handle.rows_list()
            # Stable view objects: what keeps per-message score memos
            # warm across repeated map calls in a worker.
            assert all(a is b for a, b in zip(first, second))
            assert len(first) == len(handle)
            del first, second
        finally:
            handle.unlink()

    def test_attach_detach_reattach(self):
        handle = sharedmem.SharedCorpus.publish(_make_csr())
        try:
            twin = pickle.loads(pickle.dumps(handle))
            before = [row.tolist() for row in twin.as_csr().rows()]
            twin.close()
            after = [row.tolist() for row in twin.as_csr().rows()]
            assert before == after
            twin.close()
        finally:
            handle.unlink()


# ----------------------------------------------------------------------
# Read-only enforcement
# ----------------------------------------------------------------------


class TestReadOnly:
    def test_attached_views_refuse_writes(self):
        handle = sharedmem.SharedCorpus.publish(_make_csr())
        try:
            attached = pickle.loads(pickle.dumps(handle))
            csr = attached.as_csr()
            assert not csr.indices.flags.writeable
            assert not csr.indptr.flags.writeable
            with pytest.raises(ValueError):
                csr.indices[0] = 99
            with pytest.raises(ValueError):
                csr.row(2)[0] = 99
            del csr
            attached.close()
        finally:
            handle.unlink()


# ----------------------------------------------------------------------
# Lifetime: unlink semantics and the leak detector
# ----------------------------------------------------------------------


class TestLifetime:
    def test_unlink_removes_dev_shm_name(self):
        handle = sharedmem.SharedCorpus.publish(_make_csr())
        assert os.path.exists(os.path.join("/dev/shm", handle.name))
        handle.unlink()
        assert not os.path.exists(os.path.join("/dev/shm", handle.name))

    def test_unlink_is_idempotent(self):
        handle = sharedmem.SharedCorpus.publish(_make_csr())
        handle.unlink()
        handle.unlink()

    def test_close_is_idempotent_and_attach_safe(self):
        handle = sharedmem.SharedCorpus.publish(_make_csr())
        try:
            twin = pickle.loads(pickle.dumps(handle))
            twin.close()
            twin.close()
        finally:
            handle.unlink()

    def test_unlink_all_segments_backstop(self):
        handles = [sharedmem.SharedCorpus.publish(_make_csr(n)) for n in (2, 3, 4)]
        names = [handle.name for handle in handles]
        assert all(os.path.exists(os.path.join("/dev/shm", name)) for name in names)
        sharedmem.unlink_all_segments()
        assert not any(os.path.exists(os.path.join("/dev/shm", name)) for name in names)

    def test_unlink_while_attached_elsewhere_is_safe(self):
        # POSIX semantics the lifetime model leans on: unlinking drops
        # the name immediately; existing mappings keep working.
        handle = sharedmem.SharedCorpus.publish(_make_csr())
        twin = pickle.loads(pickle.dumps(handle))
        rows = twin.as_csr()
        handle.unlink()
        assert not os.path.exists(os.path.join("/dev/shm", handle.name))
        assert rows.row(1).tolist() == _corpus_rows()[1].tolist()
        del rows
        twin.close()


# ----------------------------------------------------------------------
# Error paths: attach failures, create failures, live-view close
# ----------------------------------------------------------------------


class TestErrorPaths:
    def test_attach_after_unlink_raises_engine_error(self):
        handle = sharedmem.SharedCorpus.publish(_make_csr())
        twin = pickle.loads(pickle.dumps(handle))
        handle.unlink()
        with pytest.raises(EngineError):
            twin.as_csr()

    def test_publish_translates_oserror(self, monkeypatch):
        def refuse(*args, **kwargs):
            raise OSError("no shm for you")

        monkeypatch.setattr(sharedmem._shm_module, "SharedMemory", refuse)
        with pytest.raises(EngineError):
            sharedmem.SharedCorpus.publish(_make_csr())

    def test_attach_without_shm_module_raises(self, monkeypatch):
        handle = sharedmem.SharedCorpus.publish(_make_csr())
        try:
            twin = pickle.loads(pickle.dumps(handle))
            with monkeypatch.context() as patched:
                patched.setattr(sharedmem, "_shm_module", None)
                with pytest.raises(EngineError):
                    twin.as_csr()
        finally:
            handle.unlink()

    def test_attach_untracked_without_tracker_module(self, monkeypatch):
        # On builds without resource_tracker there is nothing to
        # suppress — the attach passes straight through.
        class StubShm:
            def __init__(self, name):
                self.name = name

        stub_module = type(
            "StubModule", (), {"SharedMemory": staticmethod(StubShm)}
        )
        monkeypatch.setattr(sharedmem, "_resource_tracker", None)
        monkeypatch.setattr(sharedmem, "_shm_module", stub_module)
        assert sharedmem._attach_untracked("seg-name").name == "seg-name"

    def test_close_with_live_views_stays_attached(self):
        handle = sharedmem.SharedCorpus.publish(_make_csr())
        try:
            twin = pickle.loads(pickle.dumps(handle))
            csr = twin.as_csr()
            # Closing while numpy still exports the buffer must not
            # corrupt the handle: it stays attached, views keep working.
            twin.close()
            assert csr.row(1).tolist() == _corpus_rows()[1].tolist()
            del csr
            twin.close()
        finally:
            handle.unlink()

    def test_owner_unlink_after_close_reattaches(self):
        handle = sharedmem.SharedCorpus.publish(_make_csr())
        name = handle.name
        handle.close()
        handle.unlink()
        assert not os.path.exists(os.path.join("/dev/shm", name))


# ----------------------------------------------------------------------
# Graceful fallback when shared memory is unavailable
# ----------------------------------------------------------------------


class TestFallback:
    def test_publish_raises_repro_error_when_disabled(self, monkeypatch):
        monkeypatch.setenv(sharedmem.SHM_ENV, "0")
        with pytest.raises(ReproError):
            sharedmem.SharedCorpus.publish(_make_csr())
        with pytest.raises(EngineError):
            sharedmem.SharedCorpus.publish(_make_csr())

    def test_share_corpus_falls_back_to_inline(self, monkeypatch):
        monkeypatch.setenv(sharedmem.SHM_ENV, "0")
        csr = _make_csr()
        corpus = sharedmem.share_corpus(csr)
        assert isinstance(corpus, sharedmem.InlineCorpus)
        clone = pickle.loads(pickle.dumps(corpus))
        assert [row.tolist() for row in clone.as_csr().rows()] == [
            row.tolist() for row in csr.rows()
        ]
        # Interface parity: lifetime calls are harmless no-ops.
        clone.close()
        clone.unlink()
        assert clone.name is None

    def test_share_corpus_falls_back_when_module_missing(self, monkeypatch):
        monkeypatch.setattr(sharedmem, "_shm_module", None)
        assert not sharedmem.shared_memory_enabled()
        corpus = sharedmem.share_corpus(_make_csr())
        assert isinstance(corpus, sharedmem.InlineCorpus)

    def test_inline_rows_list_cached(self):
        corpus = sharedmem.InlineCorpus(_make_csr())
        assert all(a is b for a, b in zip(corpus.rows_list(), corpus.rows_list()))
        assert len(corpus) == 6


# ----------------------------------------------------------------------
# WorkerPool integration: adoption, unlink-on-shutdown, workers attach
# ----------------------------------------------------------------------


class _CorpusContext:
    """Minimal context exposing the pool's ``shared_corpora`` hook."""

    def __init__(self, corpus):
        self.corpus = corpus

    def shared_corpora(self):
        return [self.corpus]


def _read_row(context, i):
    row = context.corpus.as_csr().row(i)
    return (os.getpid(), row.tolist(), bool(row.flags.writeable))


class TestWorkerPoolTransport:
    def test_workers_attach_read_only_and_pool_unlinks_on_close(self):
        corpus = sharedmem.SharedCorpus.publish(_make_csr(8))
        context = _CorpusContext(corpus)
        with WorkerPool(2) as pool:
            results = pool.run(_read_row, context, list(range(8)))
            assert os.path.exists(os.path.join("/dev/shm", corpus.name))
        # Pool shutdown owns the segment's end of life.
        assert not os.path.exists(os.path.join("/dev/shm", corpus.name))
        parent = os.getpid()
        assert all(pid != parent for pid, _, _ in results)
        assert [row for _, row, _ in results] == [
            row.tolist() for row in _make_csr(8).rows()
        ]
        assert all(not writable for _, _, writable in results)

    def test_single_task_map_uses_direct_path_and_matches_inline(self, monkeypatch):
        from repro.engine import runner as engine_runner

        # Force the skip-pool heuristic to ship: this test is about
        # the direct transport path, not the heuristic's verdict on
        # this particular machine.
        monkeypatch.setattr(engine_runner, "_tiny_map_ships", lambda size: True)
        corpus = sharedmem.SharedCorpus.publish(_make_csr(4))
        context = _CorpusContext(corpus)
        inline = _read_row(context, 2)
        with WorkerPool(2) as pool:
            (pooled,) = pool.run(_read_row, context, [2])
        assert pooled[1] == inline[1]
        assert pooled[0] != os.getpid()


# ----------------------------------------------------------------------
# Tiny-map regression: pooled and sequential paths byte-identical
# ----------------------------------------------------------------------


def _echo_task(context, task):
    return {"task": task, "context": context}


class TestTinyMapRegression:
    def test_single_task_skips_chunk_blob_protocol(self):
        # The direct path must produce exactly what the blob path (and
        # inline execution) produce, for any picklable payload.
        context = {"weights": [0.25, 0.5], "name": "tiny"}
        inline = [_echo_task(context, 7)]
        with WorkerPool(2) as pool:
            with use_worker_pool(pool):
                routed = ParallelRunner(workers=2).map(_echo_task, context, [7])
            direct = pool.run(_echo_task, context, [7])
        assert routed == inline
        assert direct == inline

    def test_stream_records_byte_identical_sequential_vs_pooled(self):
        # The BENCH_stream workload in miniature: a whole-stream
        # protocol is a single engine task, so the pooled run exercises
        # exactly the tiny-map path this PR rewired.
        from repro.stream.runner import run_stream_experiment
        from repro.stream.spec import StreamSpec

        spec = StreamSpec(
            ticks=3,
            ham_per_tick=8,
            spam_per_tick=8,
            attack_variant="usenet",
            attack_start_tick=2,
            attack_per_tick=4,
            test_size=20,
            seed=97,
        )
        sequential = run_stream_experiment(spec).to_record().as_dict()
        with WorkerPool(2) as pool:
            with use_worker_pool(pool):
                pooled = run_stream_experiment(spec).to_record().as_dict()
        assert (
            json.dumps(sequential, sort_keys=True).encode()
            == json.dumps(pooled, sort_keys=True).encode()
        )


# ----------------------------------------------------------------------
# Crash-safe lifecycle: name drops, orphan janitor, respawn survival
# ----------------------------------------------------------------------


class TestCrashSafeLifecycle:
    def test_owner_views_survive_name_drop(self):
        # The property the supervisor's degraded path relies on: after
        # the /dev/shm name is gone, the owner's existing mapping (and
        # its cached views) keep serving reads.
        csr = _make_csr()
        handle = sharedmem.SharedCorpus.publish(csr)
        try:
            before = [row.tolist() for row in handle.as_csr().rows()]
            assert sharedmem.drop_segment_name(handle.name)
            assert not os.path.exists(os.path.join("/dev/shm", handle.name))
            after = [row.tolist() for row in handle.as_csr().rows()]
            assert after == before
        finally:
            handle.unlink()

    def test_new_attach_after_drop_raises_segment_lost(self):
        from repro.errors import SegmentLostError

        handle = sharedmem.SharedCorpus.publish(_make_csr())
        try:
            blob = pickle.dumps(handle, protocol=pickle.HIGHEST_PROTOCOL)
            assert sharedmem.drop_segment_name(handle.name)
            with pytest.raises(SegmentLostError):
                attached = pickle.loads(blob)
                attached.as_csr()
        finally:
            handle.unlink()

    def test_respawn_keeps_adopted_segments_for_new_workers(self):
        corpus = sharedmem.SharedCorpus.publish(_make_csr(8))
        context = _CorpusContext(corpus)
        with WorkerPool(2) as pool:
            first = pool.run(_read_row, context, list(range(8)))
            assert pool.respawn()
            # The fresh worker set attaches to the segments the old
            # one was using; results are unchanged.
            second = pool.run(_read_row, context, list(range(8)))
            assert [r[1] for r in second] == [r[1] for r in first]
            assert os.path.exists(os.path.join("/dev/shm", corpus.name))
        # ...and close() still owns the end of life.
        assert not os.path.exists(os.path.join("/dev/shm", corpus.name))

    def test_stale_respawn_is_a_noop(self):
        with WorkerPool(2) as pool:
            generation = pool.generation
            assert pool.respawn(generation)
            # A second caller holding the old generation lost the race.
            assert not pool.respawn(generation)
            assert pool.generation == generation + 1

    def test_orphan_janitor_ignores_live_publishers(self):
        handle = sharedmem.SharedCorpus.publish(_make_csr())
        try:
            # Our own (live) segment is never considered orphaned...
            assert handle.name not in sharedmem.orphaned_segments()
            # ...not even by the --all hammer, whose job is *other*
            # processes' wedged runs.
            assert handle.name not in sharedmem.orphaned_segments(include_live=True)
        finally:
            handle.unlink()


_PUBLISH_AND_DIE = """
import os, signal, sys
import numpy as np
from repro.engine import sharedmem
from repro.spambayes.ndkernel import CsrMatrix

handle = sharedmem.SharedCorpus.publish(
    CsrMatrix.from_rows([np.arange(6, dtype=np.int64)])
)
print(handle.name, flush=True)
# Die like a kill -9'd job or an OOM group kill: the whole process
# group goes — including Python's resource-tracker daemon, which would
# otherwise unlink the segment for us.  No atexit, no tracker, no
# unlink: an orphaned segment.
os.killpg(os.getpgrp(), signal.SIGKILL)
"""


@pytest.mark.slow
def test_gc_shm_reclaims_segments_of_sigkilled_publisher(tmp_path):
    """A publisher SIGKILL'd past its cleanup leaks a segment; the
    ``repro gc-shm`` janitor must find and reclaim it."""
    import subprocess
    import sys as _sys

    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(repo_root, "src")
    victim = subprocess.run(
        [_sys.executable, "-c", _PUBLISH_AND_DIE],
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
        start_new_session=True,  # its killpg must not reach this process
    )
    assert victim.returncode == -signal.SIGKILL, victim.stderr
    name = victim.stdout.strip()
    assert name.startswith(sharedmem.BASE_PREFIX)
    path = os.path.join("/dev/shm", name)
    try:
        assert os.path.exists(path), "SIGKILL'd publisher left no segment"
        assert name in sharedmem.orphaned_segments()
        janitor = subprocess.run(
            [_sys.executable, "-m", "repro", "gc-shm"],
            env=env,
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert janitor.returncode == 0, janitor.stderr
        assert name in janitor.stdout
        assert not os.path.exists(path)
    finally:
        if os.path.exists(path):  # pragma: no cover - janitor failed
            os.unlink(path)

