"""Randomized property tests for the snapshot/restore WAL.

The copy-on-write write-ahead log behind
:meth:`Classifier.snapshot` / :meth:`Classifier.restore` is the
foundation the sweep engine and the streaming engine stand on, and
example-based tests only walk a handful of op shapes through it.
These tests drive **seeded random interleavings** of every mutating
training call (``learn`` / ``unlearn`` / ``learn_repeated`` /
``unlearn_repeated``) mixed with scoring calls (``score_ids`` /
``score`` / ``spam_prob`` — which build and partially evict the
significance memos the WAL must keep honest) between ``snapshot()``
and ``restore()``, then assert the classifier is **bit-exactly** the
classifier that never took the excursion:

* the serialized dump (token → counts mapping, table-layout
  independent) matches a freshly trained twin that replayed only the
  committed operations,
* every probe message scores identically on both — floats compared
  for equality, which catches any memo entry the restore failed to
  evict,
* the excursion/restore cycle repeats, with more committed work in
  between, so the WAL is proven reusable mid-history.

Everything is driven by ``random.Random(seed)`` over a parametrized
seed list — fully deterministic, no external fuzzing dependency.
"""

from __future__ import annotations

import random

import pytest

from repro.errors import TrainingError
from repro.spambayes.classifier import Classifier
from repro.spambayes.persistence import classifier_to_dict

VOCABULARY = [f"tok{i:02d}" for i in range(40)]


def random_message(rng: random.Random) -> frozenset[str]:
    return frozenset(rng.sample(VOCABULARY, rng.randint(1, 12)))


class OpDriver:
    """Applies a random mutating op and logs it for replay.

    ``live`` tracks every (tokens, is_spam, count) unit currently
    trained, so generated unlearns are always *valid* — the property
    under test is WAL round-tripping, not error handling.
    """

    def __init__(self, classifier: Classifier, rng: random.Random) -> None:
        self.classifier = classifier
        self.rng = rng
        self.live: list[tuple[frozenset[str], bool, int]] = []
        self.log: list[tuple] = []

    def apply_random_op(self) -> None:
        choices = ["learn", "learn", "learn_repeated", "score", "score_ids", "prob"]
        if self.live:
            choices += ["unlearn", "unlearn_repeated"]
        op = self.rng.choice(choices)
        getattr(self, f"_op_{op}")()

    # -- mutations ------------------------------------------------------

    def _op_learn(self) -> None:
        tokens = random_message(self.rng)
        is_spam = self.rng.random() < 0.5
        self.classifier.learn(tokens, is_spam)
        self.live.append((tokens, is_spam, 1))
        self.log.append(("learn", tokens, is_spam, 1))

    def _op_learn_repeated(self) -> None:
        tokens = random_message(self.rng)
        is_spam = self.rng.random() < 0.5
        count = self.rng.randint(2, 5)
        self.classifier.learn_repeated(tokens, is_spam, count)
        self.live.append((tokens, is_spam, count))
        self.log.append(("learn", tokens, is_spam, count))

    def _pop_live(self) -> tuple[frozenset[str], bool, int]:
        return self.live.pop(self.rng.randrange(len(self.live)))

    def _op_unlearn(self) -> None:
        tokens, is_spam, count = self._pop_live()
        self.classifier.unlearn(tokens, is_spam)
        if count > 1:
            self.live.append((tokens, is_spam, count - 1))
        self.log.append(("unlearn", tokens, is_spam, 1))

    def _op_unlearn_repeated(self) -> None:
        tokens, is_spam, count = self._pop_live()
        self.classifier.unlearn_repeated(tokens, is_spam, count)
        self.log.append(("unlearn", tokens, is_spam, count))

    # -- scoring (memo-warming, never mutating) -------------------------

    def _op_score(self) -> None:
        self.classifier.score(random_message(self.rng))

    def _op_score_ids(self) -> None:
        ids = self.classifier.encode_tokens(random_message(self.rng))
        self.classifier.score_ids(ids)

    def _op_prob(self) -> None:
        self.classifier.spam_prob(self.rng.choice(VOCABULARY))


def replay(log: list[tuple]) -> Classifier:
    """A fresh twin trained from a committed op log alone."""
    twin = Classifier()
    for op, tokens, is_spam, count in log:
        if op == "learn":
            twin.learn_repeated(tokens, is_spam, count)
        else:
            twin.unlearn_repeated(tokens, is_spam, count)
    return twin


def assert_bit_identical(classifier: Classifier, twin: Classifier, rng: random.Random):
    assert classifier.nspam == twin.nspam
    assert classifier.nham == twin.nham
    assert classifier.vocabulary_size == twin.vocabulary_size
    assert classifier_to_dict(classifier) == classifier_to_dict(twin)
    for _ in range(15):
        probe = random_message(rng)
        assert classifier.score(probe) == twin.score(probe)


@pytest.mark.parametrize("seed", [0, 1, 7, 42, 1234, 99991])
class TestSnapshotRoundTripProperties:
    def test_random_interleavings_round_trip_bit_exactly(self, seed):
        rng = random.Random(seed)
        driver = OpDriver(Classifier(), rng)

        # Committed prelude.
        for _ in range(rng.randint(4, 10)):
            driver.apply_random_op()

        for _round in range(3):
            committed_log = list(driver.log)
            committed_live = list(driver.live)
            snap = driver.classifier.snapshot()
            assert driver.classifier.snapshot_active
            # The excursion: a random interleaving of every op kind.
            for _ in range(rng.randint(5, 20)):
                driver.apply_random_op()
            driver.classifier.restore(snap)
            assert not driver.classifier.snapshot_active
            # Discard the excursion from the driver's book-keeping too.
            driver.log = committed_log
            driver.live = committed_live

            assert_bit_identical(
                driver.classifier, replay(driver.log), random.Random(seed + 1)
            )

            # More committed work between rounds: the WAL must be
            # re-armable mid-history, not just once on a fresh model.
            for _ in range(rng.randint(2, 6)):
                driver.apply_random_op()

        assert_bit_identical(
            driver.classifier, replay(driver.log), random.Random(seed + 2)
        )

    def test_restored_classifier_keeps_training_like_the_twin(self, seed):
        # After a restore, future training must behave as if the
        # excursion never happened — counts, memos and snapshots alike.
        rng = random.Random(seed)
        driver = OpDriver(Classifier(), rng)
        for _ in range(6):
            driver.apply_random_op()
        committed_log = list(driver.log)
        committed_live = list(driver.live)
        snap = driver.classifier.snapshot()
        for _ in range(8):
            driver.apply_random_op()
        driver.classifier.restore(snap)
        driver.log, driver.live = committed_log, committed_live

        # Same continuation applied to both sides.
        continuation = [
            (random_message(rng), rng.random() < 0.5, rng.randint(1, 3))
            for _ in range(5)
        ]
        twin = replay(driver.log)
        for tokens, is_spam, count in continuation:
            driver.classifier.learn_repeated(tokens, is_spam, count)
            twin.learn_repeated(tokens, is_spam, count)
        assert_bit_identical(driver.classifier, twin, random.Random(seed + 3))


class TestSnapshotContract:
    def test_single_use_and_ownership(self):
        classifier = Classifier()
        classifier.learn({"a", "b"}, True)
        snap = classifier.snapshot()
        with pytest.raises(TrainingError):
            classifier.snapshot()  # one active snapshot at a time
        classifier.restore(snap)
        with pytest.raises(TrainingError):
            classifier.restore(snap)  # single-use
        other = Classifier()
        other_snap = other.snapshot()
        with pytest.raises(TrainingError):
            classifier.restore(other_snap)  # owner-bound
