"""The storage layer: backend selection, the disk structures, the
janitor, and the save/load paths routed through ``storage.io``.

The disk structures are tested *differentially* against their
in-memory counterparts wherever one exists — a :class:`DiskTokenTable`
must be observationally indistinguishable from a :class:`TokenTable`
fed the same batches, mmap count columns from plain arrays — because
"indistinguishable state" is the mechanism behind the record-level
byte-identity that ``tests/test_storage_differential.py`` proves
end to end.
"""

from __future__ import annotations

import os
import pickle
import subprocess
import sys
from array import array
from pathlib import Path

import pytest

from repro.corpus.dataset import LabeledMessage, store_message
from repro.errors import ConfigurationError, PersistenceError
from repro.spambayes.classifier import Classifier
from repro.spambayes.message import Email
from repro.spambayes.persistence import (
    classifier_to_dict,
    load_classifier,
    save_classifier,
)
from repro.spambayes.token_table import TokenTable
from repro.storage import (
    STORE_DIR_ENV,
    STORE_ENV,
    STORE_PREFIX,
    DiskBackend,
    DiskMessageStore,
    DiskTokenTable,
    MemoryBackend,
    MemoryCountColumns,
    MmapCountColumns,
    NDMemoryCountColumns,
    active_backend,
    gc_stores,
    orphaned_stores,
    pid_alive,
    store_name,
    store_root,
)
from repro.storage.io import is_gzip_path, read_payload_text, write_payload_text

np = pytest.importorskip("numpy")


@pytest.fixture
def disk_backend(tmp_path, monkeypatch):
    """A :class:`DiskBackend` rooted in this test's tmp directory."""
    monkeypatch.setenv(STORE_DIR_ENV, str(tmp_path))
    backend = DiskBackend.create()
    yield backend
    backend.destroy()


class TestStoreSelection:
    def test_unset_and_auto_resolve_to_memory(self, monkeypatch):
        monkeypatch.delenv(STORE_ENV, raising=False)
        assert store_name() == "memory"
        monkeypatch.setenv(STORE_ENV, "auto")
        assert store_name() == "memory"
        monkeypatch.setenv(STORE_ENV, "")
        assert store_name() == "memory"

    def test_explicit_names_normalized(self, monkeypatch):
        monkeypatch.setenv(STORE_ENV, " DISK ")
        assert store_name() == "disk"
        monkeypatch.setenv(STORE_ENV, "Memory")
        assert store_name() == "memory"

    def test_unknown_name_is_a_configuration_error(self, monkeypatch):
        monkeypatch.setenv(STORE_ENV, "tape")
        with pytest.raises(ConfigurationError, match="REPRO_STORE"):
            store_name()

    def test_active_backend_caches_per_name(self, monkeypatch, tmp_path):
        from repro.storage import base

        monkeypatch.delenv(STORE_ENV, raising=False)
        memory = active_backend()
        assert isinstance(memory, MemoryBackend)
        assert active_backend() is memory
        # The cache is process-wide; park any disk backend an earlier
        # test resolved so this test observes a fresh creation.
        key = (os.getpid(), "disk")
        parked = base._active.pop(key, None)
        try:
            monkeypatch.setenv(STORE_DIR_ENV, str(tmp_path))
            monkeypatch.setenv(STORE_ENV, "disk")
            disk = active_backend()
            assert isinstance(disk, DiskBackend)
            assert disk.path.parent == tmp_path
            # Flipping back re-resolves to the same memory instance;
            # the disk backend stays cached for its own name.
            monkeypatch.setenv(STORE_ENV, "memory")
            assert active_backend() is memory
            monkeypatch.setenv(STORE_ENV, "disk")
            assert active_backend() is disk
        finally:
            fresh = base._active.pop(key, None)
            if fresh is not None:
                fresh.destroy()
            if parked is not None:
                base._active[key] = parked

    def test_memory_backend_protocol(self):
        backend = MemoryBackend()
        assert isinstance(backend.new_token_table(), TokenTable)
        assert isinstance(backend.count_columns("pure"), MemoryCountColumns)
        assert isinstance(backend.count_columns("nd"), NDMemoryCountColumns)
        assert backend.corpus_store() is None
        backend.close()
        backend.destroy()  # no-ops, but must exist and be idempotent


class TestDiskTokenTable:
    """Differential: DiskTokenTable vs TokenTable on the same feed."""

    BATCHES = (
        {"pear", "apple", "quince", "mango", "banana"},
        {"mango", "cherry", "apple", "date"},
        {"apple"},
        {"elderberry", "fig", "cherry"},
    )

    def _pair(self, backend):
        reference = TokenTable()
        table = backend.new_token_table()
        assert isinstance(table, DiskTokenTable)
        return reference, table

    def test_layout_and_encodings_match_memory(self, disk_backend):
        reference, table = self._pair(disk_backend)
        for batch in self.BATCHES:
            assert list(table.encode_unique(batch)) == list(
                reference.encode_unique(batch)
            )
        assert list(table) == list(reference)
        assert len(table) == len(reference)
        assert list(table.text_order_ranks()) == list(reference.text_order_ranks())

    def test_point_lookups_match_memory(self, disk_backend):
        reference, table = self._pair(disk_backend)
        for batch in self.BATCHES:
            reference.encode_unique(batch)
            table.encode_unique(batch)
        for token in reference:
            assert table.id_of(token) == reference.id_of(token)
            assert token in table
            assert table.intern(token) == reference.intern(token)
        for tid in range(len(reference)):
            assert table.token(tid) == reference.token(tid)
        assert table.token(-1) == reference.token(-1)
        assert table.id_of("never-interned") is None
        assert "never-interned" not in table
        with pytest.raises(IndexError):
            table.token(len(table))

    def test_decode_round_trips(self, disk_backend):
        reference, table = self._pair(disk_backend)
        for batch in self.BATCHES:
            reference.encode_unique(batch)
            ids = table.encode_unique(batch)
            assert sorted(table.decode(ids)) == sorted(batch)

    def test_accepts_non_set_iterables(self, disk_backend):
        _, table = self._pair(disk_backend)
        first = table.encode_unique(["b", "a", "b", "c"])
        again = table.encode_unique(["c", "a", "b"])
        assert list(first) == list(again) == [0, 1, 2]

    def test_tiny_cache_changes_nothing(self, tmp_path):
        reference = TokenTable()
        table = DiskTokenTable(tmp_path / "tiny.db", cache_limit=4)
        tokens = [f"token-{i:03d}" for i in range(64)]
        for start in range(0, 64, 8):
            batch = set(tokens[start : start + 8])
            assert list(table.encode_unique(batch)) == list(
                reference.encode_unique(batch)
            )
        assert table.decode(range(64)) == reference.decode(range(64))
        assert list(table) == list(reference)
        table.close()

    def test_reopen_sees_persisted_vocabulary(self, tmp_path):
        table = DiskTokenTable(tmp_path / "vocab.db")
        ids = table.encode_unique({"alpha", "beta", "gamma"})
        table.close()
        reopened = DiskTokenTable(tmp_path / "vocab.db")
        assert len(reopened) == 3
        assert list(reopened.encode_unique({"alpha", "beta", "gamma"})) == list(ids)
        reopened.close()

    def test_pickling_degrades_to_memory_table(self, disk_backend):
        _, table = self._pair(disk_backend)
        table.encode_unique({"x", "y", "z"})
        clone = pickle.loads(pickle.dumps(table))
        assert type(clone) is TokenTable
        assert list(clone) == list(table)


class TestMmapCountColumns:
    def test_pure_kind_preserves_counts_across_growth(self, tmp_path):
        columns = MmapCountColumns(tmp_path / "cols", "pure")
        spam, ham = columns.grow(3)
        spam[0], spam[2], ham[1] = 7, 9, 4
        # Past the initial capacity: the file is extended and remapped,
        # and previously written counts must survive the move.
        spam, ham = columns.grow(3000)
        assert (spam[0], spam[2], ham[1]) == (7, 9, 4)
        assert spam[2999] == 0 and ham[2999] == 0
        spam[2999] = 11
        spam_again, _ = columns.grow(3000)
        assert spam_again[2999] == 11
        columns.close()
        columns.close()  # idempotent

    def test_nd_kind_returns_writable_int64_arrays(self, tmp_path):
        columns = MmapCountColumns(tmp_path / "cols", "nd")
        spam, ham = columns.grow(5)
        assert spam.dtype == np.int64 and ham.dtype == np.int64
        spam[:] = np.arange(5)
        spam2, _ = columns.grow(4096)
        assert list(spam2[:5]) == [0, 1, 2, 3, 4]
        assert int(spam2[5:].sum()) == 0
        columns.close()

    def test_memory_columns_grow_in_place(self):
        columns = MemoryCountColumns()
        spam, ham = columns.grow(4)
        spam[1] = 3
        spam2, ham2 = columns.grow(10)
        assert spam2 is spam and ham2 is ham  # extended, not replaced
        assert spam2[1] == 3 and len(spam2) == 10

    def test_nd_memory_columns_preserve_and_adopt(self):
        columns = NDMemoryCountColumns()
        spam, _ = columns.grow(4)
        spam[1] = 3
        spam2, _ = columns.grow(1000)
        assert spam2[1] == 3 and spam2.shape == (1000,)
        adopted = NDMemoryCountColumns.adopt(spam2.copy(), np.zeros(1000, np.int64))
        spam3, _ = adopted.grow(1000)
        assert spam3[1] == 3


class TestDiskMessageStore:
    def test_append_fetch_and_reopen(self, disk_backend):
        store = disk_backend.corpus_store()
        assert isinstance(store, DiskMessageStore)
        ids = store.table.encode_unique({"cash", "offer", "prize"})
        row = store.append("msg-1", True, ids)
        assert row == 0 and len(store) == 1
        assert list(store.ids(0)) == list(ids)
        assert store.msgid(0) == "msg-1"
        # A second handle over the same file (a resumed process) sees
        # the same rows and vocabulary.
        reopened = DiskMessageStore(store._db_path, store.table)
        assert len(reopened) == 1
        assert list(reopened.ids(0)) == list(ids)
        reopened.close()

    def test_stored_message_handles(self, disk_backend):
        store = disk_backend.corpus_store()
        email = Email.from_text(
            "Subject: cheap prize\n\nclaim your cash prize offer now",
            msgid="spam-0",
        )
        message = store_message(
            store, email, True, email_loader=lambda: email
        )
        plain = LabeledMessage(email, is_spam=True)
        assert message.is_spam and message.msgid == "spam-0"
        assert message.tokens() == plain.tokens()
        assert message.email is email
        message.invalidate_tokens()  # interface parity no-op
        # Against the ingest table: the stored row, verbatim.
        assert list(message.token_ids(store.table)) == list(
            store.ids(0)
        )
        # Against a different table: re-encoded, same result as the
        # in-memory message against that table.
        other = TokenTable()
        assert list(message.token_ids(other)) == list(plain.token_ids(TokenTable()))
        # Pickling materializes a plain LabeledMessage via the loader.
        revived = pickle.loads(pickle.dumps(message))
        assert type(revived) is LabeledMessage
        assert revived.tokens() == plain.tokens()

    def test_stored_message_without_loader_refuses_body(self, disk_backend):
        from repro.errors import CorpusError

        store = disk_backend.corpus_store()
        email = Email.from_text("Subject: hi\n\nhello there", msgid="m")
        message = store_message(store, email, False)
        with pytest.raises(CorpusError, match="loader"):
            _ = message.email


class TestDiskBackendLifecycle:
    def test_resources_live_under_one_directory(self, disk_backend):
        table = disk_backend.new_token_table()
        columns = disk_backend.count_columns("pure")
        store = disk_backend.corpus_store()
        files = list(disk_backend.path.iterdir())
        assert files, "backend directory should hold store files"
        assert disk_backend.path.name.startswith(STORE_PREFIX)
        columns.grow(8)
        table.encode_unique({"a"})
        store.append("m", False, array("l"))
        disk_backend.destroy()
        assert not disk_backend.path.exists()
        disk_backend.destroy()  # idempotent

    def test_destroy_is_owner_only(self, tmp_path, monkeypatch):
        monkeypatch.setenv(STORE_DIR_ENV, str(tmp_path))
        backend = DiskBackend.create()
        backend._owner_pid = os.getpid() + 1  # simulate a forked child
        backend.destroy()
        assert backend.path.exists()
        backend._owner_pid = os.getpid()
        backend.destroy()
        assert not backend.path.exists()


class TestJanitor:
    @staticmethod
    def _dead_pid() -> int:
        victim = subprocess.run(
            [sys.executable, "-c", "import os; print(os.getpid())"],
            capture_output=True,
            text=True,
            check=True,
        )
        return int(victim.stdout)

    def test_pid_alive(self):
        assert pid_alive(os.getpid())
        assert not pid_alive(self._dead_pid())

    def test_store_root_honours_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv(STORE_DIR_ENV, str(tmp_path))
        assert store_root() == tmp_path

    def test_orphan_discovery_and_reclaim(self, tmp_path, monkeypatch):
        monkeypatch.setenv(STORE_DIR_ENV, str(tmp_path))
        dead = tmp_path / f"{STORE_PREFIX}{self._dead_pid():x}_deadbeef"
        dead.mkdir()
        (dead / "tokens_0001.db").write_bytes(b"")
        own = tmp_path / f"{STORE_PREFIX}{os.getpid():x}_cafecafe"
        own.mkdir()
        live = tmp_path / f"{STORE_PREFIX}1_00000001"  # pid 1: alive, not ours
        live.mkdir()
        malformed = tmp_path / f"{STORE_PREFIX}zzz"
        malformed.mkdir()
        unrelated = tmp_path / "somebody-else"
        unrelated.mkdir()

        orphans = orphaned_stores()
        assert dead in orphans
        assert own not in orphans and live not in orphans
        assert malformed not in orphans and unrelated not in orphans
        # --all widens to live *other* owners, never to our own stores.
        wide = orphaned_stores(include_live=True)
        assert live in wide and own not in wide

        removed = gc_stores()
        assert str(dead) in removed
        assert not dead.exists()
        assert own.exists() and live.exists()

    def test_gc_cli_reports_reclaimed_stores(self, tmp_path, monkeypatch, capsys):
        from repro.cli import main

        monkeypatch.setenv(STORE_DIR_ENV, str(tmp_path))
        dead = tmp_path / f"{STORE_PREFIX}{self._dead_pid():x}_0badf00d"
        dead.mkdir()
        assert main(["gc"]) == 0
        out = capsys.readouterr().out
        assert f"removed {dead}" in out
        assert "store(s) reclaimed" in out
        assert not dead.exists()
        # Second sweep: nothing left.
        assert main(["gc"]) == 0
        assert "0 segment(s) and 0 store(s) reclaimed" in capsys.readouterr().out


class TestStorageIo:
    def test_gzip_suffix_is_case_insensitive(self):
        assert is_gzip_path(Path("model.json.gz"))
        assert is_gzip_path(Path("model.json.GZ"))
        assert not is_gzip_path(Path("model.json"))

    def test_payload_round_trip_plain_and_gzip(self, tmp_path):
        for name in ("payload.json", "payload.json.gz", "payload.json.GZ"):
            target = tmp_path / name
            write_payload_text(target, "hello: κόσμε")
            assert read_payload_text(target) == "hello: κόσμε"

    def test_gzip_writes_are_deterministic(self, tmp_path):
        first, second = tmp_path / "a.gz", tmp_path / "b.gz"
        write_payload_text(first, "same payload")
        write_payload_text(second, "same payload")
        assert first.read_bytes() == second.read_bytes()


class TestPersistenceThroughBackends:
    """Satellite regression: save/load over the disk backend."""

    def _trained(self, table=None, columns=None) -> Classifier:
        classifier = Classifier(table=table, columns=columns)
        classifier.learn({"cash", "offer", "prize", "winner"}, True)
        classifier.learn({"meeting", "agenda", "notes"}, False)
        classifier.learn({"offer", "agenda"}, False)
        return classifier

    def test_disk_backed_classifier_round_trips(self, disk_backend, tmp_path):
        trained = self._trained(
            table=disk_backend.new_token_table(),
            columns=disk_backend.count_columns("pure"),
        )
        reference = self._trained()
        assert classifier_to_dict(trained) == classifier_to_dict(reference)
        for name in ("model.json", "model.json.gz"):
            target = tmp_path / name
            save_classifier(trained, target)
            loaded = load_classifier(target)
            assert classifier_to_dict(loaded) == classifier_to_dict(trained)
            probe = {"offer", "meeting", "winner"}
            assert loaded.score(probe) == trained.score(probe)

    def test_dumps_byte_identical_across_backends(self, disk_backend, tmp_path):
        disk_target = tmp_path / "disk.json.gz"
        memory_target = tmp_path / "memory.json.gz"
        save_classifier(
            self._trained(
                table=disk_backend.new_token_table(),
                columns=disk_backend.count_columns("pure"),
            ),
            disk_target,
        )
        save_classifier(self._trained(), memory_target)
        assert disk_target.read_bytes() == memory_target.read_bytes()

    def test_load_errors_stay_persistence_errors(self, tmp_path):
        with pytest.raises(PersistenceError):
            load_classifier(tmp_path / "missing.json")
        bad = tmp_path / "bad.json"
        bad.write_text("{not json", encoding="utf-8")
        with pytest.raises(PersistenceError):
            load_classifier(bad)
