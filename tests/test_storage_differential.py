"""Backend differentials: ``REPRO_STORE=memory`` vs ``disk`` must be
invisible in every record the pipeline emits.

The storage layer's contract is that records are token-table-layout
independent (scoring tie-breaks compare token *text*, persisted dumps
sort by text, grouping keys are text-keyed), so where the table and
count columns live — Python lists and arrays, or SQLite and mmap —
cannot change a single byte of scenario, replicate or stream output.
This suite proves it the same way the ND-kernel and fault suites prove
their contracts: the same work run under both backends (crossed with
both kernels, both worker counts, and — in subprocesses — several
``PYTHONHASHSEED`` values), serialized records compared for equality.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from contextlib import contextmanager
from pathlib import Path

import pytest

from repro.scenarios import replicate_scenario, run_scenario
from repro.spambayes import ndkernel
from repro.storage import STORE_DIR_ENV, STORE_ENV

SRC = str(Path(__file__).resolve().parent.parent / "src")

KERNELS = ("python", "nd") if ndkernel.available() else ("python",)

# Small but complete: a batch scenario exercising folds + attack
# sweeps, and a stream scenario exercising ingestion, per-tick
# training, bulk scoring and the clean counterfactual.
BATCH_SCENARIO = "dictionary-vs-none"
BATCH_OVERRIDES = dict(
    inbox_size=80,
    folds=2,
    corpus_ham=100,
    corpus_spam=100,
    attack_fractions=(0.0, 0.05),
)
STREAM_SCENARIO = "stream-dictionary-ramp"
STREAM_OVERRIDES = dict(
    ticks=3,
    ham_per_tick=16,
    spam_per_tick=16,
    attack_start_tick=2,
    attack_per_tick=6,
    test_size=30,
)


@contextmanager
def _env(var: str, value: str):
    previous = os.environ.get(var)
    os.environ[var] = value
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop(var, None)
        else:
            os.environ[var] = previous


@pytest.fixture(autouse=True)
def _rooted_store_dir(tmp_path, monkeypatch):
    # Root any disk backend this process lazily creates under pytest's
    # tmp tree.  (active_backend caches per name for the process's
    # lifetime, so only the first disk-using test actually picks the
    # root — the cached backend is reused after that, which is exactly
    # the production behaviour and irrelevant to the differentials.)
    monkeypatch.setenv(STORE_DIR_ENV, str(tmp_path))


def _batch_record(store: str, kernel: str, workers: int = 1) -> str:
    with _env(STORE_ENV, store), _env(ndkernel.KERNEL_ENV, kernel):
        outcome = run_scenario(
            BATCH_SCENARIO, overrides=BATCH_OVERRIDES, workers=workers
        )
    return json.dumps(outcome.record_dict(), sort_keys=True)


def _replicated_record(store: str, kernel: str, workers: int) -> str:
    with _env(STORE_ENV, store), _env(ndkernel.KERNEL_ENV, kernel):
        record = replicate_scenario(
            STREAM_SCENARIO,
            seeds=2,
            overrides=STREAM_OVERRIDES,
            workers=workers,
        )
    return json.dumps(record.as_dict(), sort_keys=True)


class TestScenarioRecordsAcrossBackends:
    @pytest.mark.parametrize("kernel", KERNELS)
    def test_batch_scenario_byte_identical(self, kernel):
        assert _batch_record("disk", kernel) == _batch_record("memory", kernel)

    def test_batch_scenario_identical_across_kernels_and_backends(self):
        records = {
            _batch_record(store, kernel)
            for store in ("memory", "disk")
            for kernel in KERNELS
        }
        assert len(records) == 1


class TestStreamReplicationAcrossBackends:
    @pytest.mark.parametrize("kernel", KERNELS)
    def test_stream_replication_byte_identical(self, kernel):
        assert _replicated_record("disk", kernel, 1) == _replicated_record(
            "memory", kernel, 1
        )

    @pytest.mark.slow
    def test_stream_replication_identical_across_worker_counts(self):
        # The full cross: backend x worker count, one kernel (the
        # default-auto one), all four serializations equal.  Pooled
        # legs fork workers that lazily build their own backends.
        kernel = "nd" if ndkernel.available() else "python"
        records = {
            _replicated_record(store, kernel, workers)
            for store in ("memory", "disk")
            for workers in (1, 2)
        }
        assert len(records) == 1


class TestPrivatePoolForkSafety:
    """The fold fan-out of ``figure5-threshold`` maps through a
    *private* ``ProcessPoolExecutor`` whose fork-started workers
    inherit the context by memory, not pickle — the one engine path
    that would hand every worker the parent's live SQLite token table
    and ``MAP_SHARED`` count columns.  ``ParallelRunner.map``
    roundtrips the context through pickle when the disk backend is
    active; regression for the sibling-intern collision
    (``UNIQUE constraint failed: tokens.id``)."""

    FOLD_SCENARIO = "figure5-threshold"
    FOLD_OVERRIDES = dict(
        inbox_size=60,
        folds=2,
        corpus_ham=100,
        corpus_spam=100,
        attack_fractions=(0.0, 0.05),
        quantiles=(0.10,),
    )

    def _record(self, store: str, workers: int) -> str:
        with _env(STORE_ENV, store):
            outcome = run_scenario(
                self.FOLD_SCENARIO, overrides=self.FOLD_OVERRIDES, workers=workers
            )
        return json.dumps(outcome.record_dict(), sort_keys=True)

    def test_disk_backend_survives_private_pool_fan_out(self):
        reference = self._record("memory", 1)
        assert self._record("disk", 2) == reference
        assert self._record("disk", 1) == reference


_SUBPROCESS_SCRIPT = """
import json
from repro.scenarios import replicate_scenario

record = replicate_scenario(
    "stream-dictionary-ramp",
    seeds=2,
    overrides=dict(
        ticks=3, ham_per_tick=16, spam_per_tick=16,
        attack_start_tick=2, attack_per_tick=6, test_size=30,
    ),
    workers=1,
)
print(json.dumps(record.as_dict(), indent=2))
"""


def _run_leg(store: str, hash_seed: str, store_dir: Path) -> str:
    env = os.environ.copy()
    env["PYTHONHASHSEED"] = hash_seed
    env[STORE_ENV] = store
    env[STORE_DIR_ENV] = str(store_dir)
    env["PYTHONPATH"] = SRC + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    result = subprocess.run(
        [sys.executable, "-c", _SUBPROCESS_SCRIPT],
        capture_output=True,
        text=True,
        env=env,
        check=False,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


@pytest.mark.slow
class TestBackendsAcrossHashSeeds:
    def test_records_identical_across_backends_and_hash_seeds(self, tmp_path):
        """The acceptance cross: store x PYTHONHASHSEED, each leg its
        own interpreter, serialized stream records byte-identical."""
        legs = [
            _run_leg("memory", "0", tmp_path),
            _run_leg("disk", "1", tmp_path),
            _run_leg("disk", "2", tmp_path),
        ]
        assert legs[1] == legs[0]
        assert legs[2] == legs[0]
        # And every leg cleaned up after itself: no store directories
        # survive their owning interpreter's exit.
        assert not list(tmp_path.glob("repro_store_*"))
