"""Bounded-RSS proof: the disk backend streams a corpus the in-memory
backend cannot hold.

The whole point of ``REPRO_STORE=disk`` is that corpus and vocabulary
state spills to SQLite and file-backed mmap instead of private heap —
so a process capped with ``resource.setrlimit`` must be able to play a
stream an uncapped in-memory run needs hundreds of megabytes for.
Both legs run the *same* scenario under the *same* ``RLIMIT_DATA``
cap (``RLIMIT_DATA`` covers brk + private anonymous mappings — the
Python heap — but not the disk backend's file-backed pages, which is
precisely the mechanism under test):

* ``REPRO_STORE=disk`` must complete and report its throughput;
* ``REPRO_STORE=memory`` must die of ``MemoryError`` — proving the
  cap is real and the corpus genuinely does not fit.

The streamed corpus is 10x the ``large`` benchmark scale (1,600
messages/replica there; >=16,000 arrivals+evaluations here).  The disk
leg's ingest throughput is appended to
``benchmarks/results/BENCH_storage.json`` so the record trajectory
includes the capped regime, not just the benchmark's uncapped one.
"""

from __future__ import annotations

import json
import os
import re
import subprocess
import sys
from pathlib import Path

import pytest

from repro.storage import STORE_DIR_ENV, STORE_ENV

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = str(REPO_ROOT / "src")
RESULTS = REPO_ROOT / "benchmarks" / "results" / "BENCH_storage.json"

# 128 MiB of heap: ~1.5x the disk leg's needs, ~half the memory leg's
# (the uncapped memory run peaks past 250 MiB on this corpus).
CAP_BYTES = 128 * 1024 * 1024

# 5 ticks x (1520 ham + 1520 spam) arrivals + 800 held-out messages
# evaluated per tick: 19,200 messages processed, 16,000-message corpus
# — 10x the stream benchmark's `large` scale (1,600 per replica).
_STREAM_SCRIPT = """
import resource, time
resource.setrlimit(resource.RLIMIT_DATA, (%(cap)d, %(cap)d))
from repro.stream.runner import StreamRunner
from repro.stream.spec import StreamSpec

spec = StreamSpec(
    ticks=5, ham_per_tick=1520, spam_per_tick=1520,
    attack_start_tick=3, attack_per_tick=0, test_size=800, seed=1,
)
start = time.perf_counter()
result = StreamRunner(spec).run()
elapsed = time.perf_counter() - start
print(f"OK messages={result.messages_processed()} elapsed={elapsed:.3f}")
""" % {"cap": CAP_BYTES}


def _run_capped(store: str, store_dir: Path) -> subprocess.CompletedProcess:
    env = os.environ.copy()
    env[STORE_ENV] = store
    env[STORE_DIR_ENV] = str(store_dir)
    env["PYTHONPATH"] = SRC + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.run(
        [sys.executable, "-c", _STREAM_SCRIPT],
        capture_output=True,
        text=True,
        env=env,
        check=False,
        timeout=600,
    )


def _append_throughput(messages: int, elapsed: float) -> None:
    RESULTS.parent.mkdir(parents=True, exist_ok=True)
    history: list = []
    if RESULTS.exists():
        try:
            existing = json.loads(RESULTS.read_text(encoding="utf-8"))
            history = existing if isinstance(existing, list) else [existing]
        except json.JSONDecodeError:
            history = []
    history.append(
        {
            "benchmark": "storage-rss",
            "store": "disk",
            "rlimit_data_bytes": CAP_BYTES,
            "messages": messages,
            "elapsed_seconds": elapsed,
            "ingest_msgs_per_sec": messages / elapsed if elapsed else 0.0,
        }
    )
    RESULTS.write_text(json.dumps(history, indent=2) + "\n", encoding="utf-8")


@pytest.mark.slow
class TestBoundedRss:
    def test_disk_backend_streams_under_cap_memory_backend_cannot(self, tmp_path):
        disk = _run_capped("disk", tmp_path)
        assert disk.returncode == 0, disk.stderr
        match = re.search(r"OK messages=(\d+) elapsed=([\d.]+)", disk.stdout)
        assert match, disk.stdout
        messages, elapsed = int(match.group(1)), float(match.group(2))
        assert messages >= 16_000, "corpus must be >=10x the large stream scale"
        # The capped interpreter cleaned up its store directory.
        assert not list(tmp_path.glob("repro_store_*"))

        memory = _run_capped("memory", tmp_path)
        assert memory.returncode != 0, (
            "the in-memory backend satisfied a cap it must not fit under — "
            "either the cap is too generous or the corpus too small\n"
            + memory.stdout
        )
        assert "MemoryError" in memory.stderr, memory.stderr

        _append_throughput(messages, elapsed)
        assert RESULTS.exists()
