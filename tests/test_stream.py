"""Tests for the streaming mailstream engine (:mod:`repro.stream`)."""

from __future__ import annotations

import json

import pytest

from repro.errors import ExperimentError
from repro.experiments.results import ExperimentRecord
from repro.experiments.retraining import RetrainingConfig
from repro.scenarios import get_scenario, list_scenarios, run_scenario
from repro.stream import (
    StreamRunner,
    StreamSpec,
    build_tick_defense,
    run_stream_experiment,
)
from repro.stream.defenses import RoniTickDefense, ThresholdTickDefense, TickDefense
from repro.spambayes.token_table import TokenTable

TINY = dict(
    ticks=3,
    ham_per_tick=20,
    spam_per_tick=20,
    attack_start_tick=2,
    attack_per_tick=5,
    test_size=40,
    seed=11,
)


def tiny_spec(**overrides) -> StreamSpec:
    merged = dict(TINY)
    merged.update(overrides)
    return StreamSpec(**merged)


# ----------------------------------------------------------------------
# Spec validation and schedules
# ----------------------------------------------------------------------


class TestSpecValidation:
    @pytest.mark.parametrize(
        "overrides",
        [
            dict(ticks=0),
            dict(ham_per_tick=-1),
            dict(spam_per_tick=-1),
            dict(attack_start_tick=0),
            dict(attack_per_tick=-1),
            dict(ramp="exponential"),
            dict(ramp_ticks=0),
            dict(defense="magic"),
            dict(test_size=1),
            dict(defense="roni", roni_calibration_size=10),
            dict(defense="threshold", spam_per_tick=0),
        ],
    )
    def test_invalid_specs_raise(self, overrides):
        with pytest.raises(ExperimentError):
            tiny_spec(**overrides)

    def test_defaults_are_the_legacy_weekly_loop(self):
        spec = StreamSpec()
        assert (spec.ticks, spec.ham_per_tick, spec.spam_per_tick) == (8, 60, 60)
        assert spec.ramp == "constant"
        assert spec.defense == "none"


class TestSchedules:
    def test_constant_matches_legacy_shape(self):
        spec = tiny_spec(ticks=5, attack_start_tick=3, attack_per_tick=7)
        assert spec.tick_attack_counts() == (0, 0, 7, 7, 7)

    def test_linear_ramps_to_peak_and_holds(self):
        spec = tiny_spec(
            ticks=6, attack_start_tick=2, attack_per_tick=12, ramp="linear", ramp_ticks=4
        )
        assert spec.tick_attack_counts() == (0, 3, 6, 9, 12, 12)

    def test_burst_compresses_the_campaign_budget(self):
        spec = tiny_spec(
            ticks=4, attack_start_tick=2, attack_per_tick=5, ramp="burst", ramp_ticks=3
        )
        assert spec.tick_attack_counts() == (0, 15, 0, 0)
        # Same total mail as the constant campaign over ramp_ticks ticks.
        constant = tiny_spec(ticks=4, attack_start_tick=2, attack_per_tick=5)
        assert spec.total_attack_messages() == constant.total_attack_messages()

    def test_zero_peak_is_a_clean_stream(self):
        spec = tiny_spec(attack_per_tick=0)
        assert spec.tick_attack_counts() == (0, 0, 0)
        assert spec.total_arrivals() == 3 * 40

    def test_total_arrivals_counts_attack_mail(self):
        spec = tiny_spec()
        assert spec.total_arrivals() == 3 * 40 + 2 * 5


class TestFromRetraining:
    def test_field_mapping(self):
        config = RetrainingConfig(
            weeks=5,
            ham_per_week=25,
            spam_per_week=35,
            attack_start_week=2,
            attack_per_week=9,
            defense="roni",
            test_size=80,
            seed=23,
        )
        spec = StreamSpec.from_retraining(config)
        assert spec.ticks == 5
        assert (spec.ham_per_tick, spec.spam_per_tick) == (25, 35)
        assert (spec.attack_start_tick, spec.attack_per_tick) == (2, 9)
        assert spec.ramp == "constant"
        assert spec.defense == "roni"
        assert spec.roni == config.roni
        assert spec.test_size == 80
        assert spec.seed == 23
        assert spec.measure_clean is False


# ----------------------------------------------------------------------
# The runner
# ----------------------------------------------------------------------


class TestUndefendedStream:
    @pytest.fixture(scope="class")
    def result(self):
        return StreamRunner(tiny_spec()).run()

    def test_one_outcome_per_tick(self, result):
        assert [o.tick for o in result.ticks] == [1, 2, 3]

    def test_training_accumulates_incrementally(self, result):
        assert [o.trained_messages for o in result.ticks] == [40, 85, 130]

    def test_attack_all_trained_when_undefended(self, result):
        for outcome in result.ticks:
            assert outcome.attack_trained == outcome.attack_sent
            assert outcome.attack_rejected == 0
            assert outcome.legitimate_rejected == 0

    def test_dictionary_stream_degrades_the_filter(self, result):
        before = result.outcome(1).confusion.ham_misclassified_rate
        after = result.final_ham_misclassification()
        assert after > before + 0.3

    def test_outcome_lookup_raises_on_unknown_tick(self, result):
        with pytest.raises(ExperimentError):
            result.outcome(99)

    def test_no_cutoffs_or_clean_without_the_knobs(self, result):
        for outcome in result.ticks:
            assert outcome.ham_cutoff is None
            assert outcome.clean_confusion is None

    def test_messages_processed_accounting(self, result):
        # 120 legit + 10 attack arrivals, 3 evaluations of the
        # 40-message held-out set (no clean counterfactual).
        assert result.messages_processed() == 130 + 3 * 40


class TestCleanCounterfactual:
    @pytest.fixture(scope="class")
    def results(self):
        plain = StreamRunner(tiny_spec()).run()
        measured = StreamRunner(tiny_spec(measure_clean=True)).run()
        return plain, measured

    def test_clean_equals_actual_before_the_attack(self, results):
        _, measured = results
        first = measured.outcome(1)
        assert first.clean_confusion is not None
        assert first.clean_confusion.as_dict() == first.confusion.as_dict()

    def test_clean_track_is_healthier_after_the_attack(self, results):
        _, measured = results
        last = measured.ticks[-1]
        assert (
            last.clean_confusion.ham_misclassified_rate
            < last.confusion.ham_misclassified_rate
        )

    def test_snapshot_rollback_leaves_the_stream_untouched(self, results):
        # The WAL counterfactual must be a pure measurement: every
        # actual per-tick confusion is bit-identical with and without
        # the snapshot/unlearn/restore excursion.
        plain, measured = results
        assert [o.confusion.as_dict() for o in measured.ticks] == [
            o.confusion.as_dict() for o in plain.ticks
        ]
        assert [o.trained_messages for o in measured.ticks] == [
            o.trained_messages for o in plain.ticks
        ]

    def test_clean_series_rides_the_record(self, results):
        _, measured = results
        record = measured.to_record()
        assert [series.name for series in record.series] == ["stream", "stream-clean"]

    def test_messages_processed_counts_only_real_rescores(self, results):
        # Tick 1 has no trained attack mail, so its "clean" value is a
        # copy, not a re-score: 1 + 2 + 2 evaluations of the
        # 40-message test set on top of the 130 ingested arrivals.
        _, measured = results
        assert measured.messages_processed() == 130 + 5 * 40


@pytest.mark.slow
class TestRoniStream:
    @pytest.fixture(scope="class")
    def result(self):
        spec = tiny_spec(
            ham_per_tick=30,
            spam_per_tick=30,
            attack_start_tick=3,
            attack_per_tick=6,
            defense="roni",
            roni_calibration_size=100,
        )
        return StreamRunner(spec).run()

    def test_gate_open_until_history_warms(self, result):
        # Tick 1 trains with no gate (no history yet).
        assert result.outcome(1).legitimate_rejected == 0

    def test_dictionary_stream_rejected_once_calibrated(self, result):
        attacked = [o for o in result.ticks if o.attack_sent > 0]
        assert attacked
        for outcome in attacked:
            assert outcome.attack_rejected == outcome.attack_sent
            assert outcome.attack_trained == 0

    def test_filter_stays_healthy(self, result):
        assert result.final_ham_misclassification() < 0.1

    def test_record_config_carries_the_gate_parameters(self, result):
        config = result.to_record().config
        assert config["roni_calibration_size"] == 100
        assert config["roni"]["train_size"] == result.spec.roni.train_size
        assert config["roni"]["validation_size"] == result.spec.roni.validation_size


class TestThresholdStream:
    @pytest.fixture(scope="class")
    def result(self):
        return StreamRunner(tiny_spec(defense="threshold")).run()

    def test_cutoffs_fitted_every_tick(self, result):
        for outcome in result.ticks:
            assert outcome.ham_cutoff is not None
            assert outcome.spam_cutoff is not None
            assert outcome.ham_cutoff <= outcome.spam_cutoff

    def test_fitted_thresholds_ride_the_record_extras(self, result):
        record = result.to_record()
        fits = record.extras["fitted_thresholds"]
        assert [tick for tick, _, _ in fits] == [1, 2, 3]

    def test_record_config_carries_the_quantile(self, result):
        config = result.to_record().config
        assert config["threshold_quantile"] == result.spec.threshold_quantile


class TestTickDefenseFactory:
    def test_names_map_to_classes(self):
        table = TokenTable()
        assert type(build_tick_defense(tiny_spec(), table)) is TickDefense
        assert isinstance(
            build_tick_defense(
                tiny_spec(
                    ham_per_tick=30,
                    spam_per_tick=30,
                    defense="roni",
                    roni_calibration_size=100,
                ),
                table,
            ),
            RoniTickDefense,
        )
        assert isinstance(
            build_tick_defense(tiny_spec(defense="threshold"), table),
            ThresholdTickDefense,
        )


# ----------------------------------------------------------------------
# Records and the results layer
# ----------------------------------------------------------------------


class TestStreamRecords:
    @pytest.fixture(scope="class")
    def record(self):
        return StreamRunner(tiny_spec()).run().to_record()

    def test_series_x_is_the_tick_number(self, record):
        (series,) = record.series
        assert series.name == "stream"
        assert series.xs() == [1.0, 2.0, 3.0]

    def test_round_trips_through_json(self, record):
        restored = ExperimentRecord.from_dict(json.loads(json.dumps(record.as_dict())))
        assert restored.as_dict() == record.as_dict()

    def test_extras_carry_the_gate_counters(self, record):
        assert record.extras["attack_sent"] == [0, 5, 5]
        assert record.extras["attack_trained"] == [0, 5, 5]
        assert record.extras["trained_messages"] == [40, 85, 130]

    def test_config_block_names_the_schedule(self, record):
        assert record.config["ramp"] == "constant"
        assert record.config["defense"] == "none"
        assert record.config["ticks"] == 3


# ----------------------------------------------------------------------
# Engine and registry integration
# ----------------------------------------------------------------------


class TestEngineIntegration:
    def test_protocol_entry_point_matches_direct_runner(self, suite_workers):
        spec = tiny_spec(workers=suite_workers)
        via_engine = run_stream_experiment(spec)
        direct = StreamRunner(tiny_spec()).run()
        assert [o.confusion.as_dict() for o in via_engine.ticks] == [
            o.confusion.as_dict() for o in direct.ticks
        ]

    def test_six_stream_scenarios_registered(self):
        names = [s.name for s in list_scenarios() if s.protocol == "stream"]
        assert names == [
            "stream-clean-control",
            "stream-dictionary-ramp",
            "stream-dictionary-vs-roni",
            "stream-focused-vs-roni",
            "stream-threshold-over-time",
            "stream-usenet-burst",
        ]

    def test_registered_defaults_build(self):
        for spec in list_scenarios(lambda s: s.protocol == "stream"):
            config = spec.build_config()
            assert isinstance(config, StreamSpec)

    def test_run_scenario_applies_overrides(self, suite_workers):
        outcome = run_scenario(
            "stream-clean-control", overrides=dict(TINY), workers=suite_workers
        )
        assert outcome.record is not None
        assert outcome.result.ticks[-1].attack_sent == 5  # override beats default 0

    def test_clean_control_default_has_no_attack(self):
        spec = get_scenario("stream-clean-control").build_config(
            ticks=2, ham_per_tick=15, spam_per_tick=15, test_size=30
        )
        assert spec.tick_attack_counts() == (0, 0)
        result = StreamRunner(spec).run()
        assert all(o.attack_sent == 0 for o in result.ticks)


# ----------------------------------------------------------------------
# Phase profiling
# ----------------------------------------------------------------------


class TestPhaseProfiling:
    def test_profile_off_by_default(self):
        result = StreamRunner(tiny_spec()).run()
        assert result.phase_profile is None

    def test_profile_covers_every_tick_and_phase(self):
        from repro.stream.profile import PHASES

        spec = tiny_spec(measure_clean=True, profile_phases=True)
        result = StreamRunner(spec).run()
        profile = result.phase_profile
        assert profile is not None
        assert len(profile.per_tick) == spec.ticks
        for tick in profile.per_tick:
            # With measure_clean on, every tick runs all four phases.
            assert set(tick) == set(PHASES)
            assert all(seconds >= 0.0 for seconds in tick.values())
        assert profile.prepare_seconds > 0.0
        assert profile.total_seconds > 0.0
        # The phases cover the bulk of the run: only loop scaffolding
        # and record assembly go unattributed.
        assert 0.5 < profile.accounted_fraction() <= 1.0

    def test_profile_is_pure_observation(self):
        plain = StreamRunner(tiny_spec(measure_clean=True)).run()
        profiled = StreamRunner(
            tiny_spec(measure_clean=True, profile_phases=True)
        ).run()
        assert json.dumps(plain.to_record().as_dict(), sort_keys=True) == json.dumps(
            profiled.to_record().as_dict(), sort_keys=True
        )

    def test_profile_helpers_and_render(self):
        from repro.stream.profile import PHASES, StreamProfile

        profile = StreamProfile(
            per_tick=[
                {"train": 0.2, "defense": 0.01, "eval": 0.1, "counterfactual": 0.05},
                {"train": 0.3, "defense": 0.02, "eval": 0.1, "counterfactual": 0.07},
            ],
            prepare_seconds=0.5,
            total_seconds=1.5,
        )
        totals = profile.phase_totals()
        assert totals["train"] == pytest.approx(0.5)
        assert profile.phase_series("eval") == [0.1, 0.1]
        assert profile.phase_series("missing") == [0.0, 0.0]
        assert profile.accounted_seconds() == pytest.approx(0.5 + 0.85)
        assert profile.accounted_fraction() == pytest.approx(1.35 / 1.5)
        payload = profile.as_dict()
        assert payload["phase_totals"]["counterfactual"] == pytest.approx(0.12)
        assert len(payload["per_tick"]) == 2
        rendered = profile.render()
        assert "phase timings" in rendered
        for phase in PHASES:
            assert phase in rendered
        assert "accounted 90.0%" in rendered

    def test_untimed_profile_accounts_fully(self):
        from repro.stream.profile import StreamProfile

        assert StreamProfile().accounted_fraction() == 1.0

    def test_disabled_timer_is_inert(self):
        from repro.stream.profile import PhaseTimer

        timer = PhaseTimer(False)
        timer.start_tick()
        with timer.phase("train"):
            pass
        assert timer.finish(1.0) is None
