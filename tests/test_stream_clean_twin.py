"""The clean-twin counterfactual's bit-exactness contract.

The streaming runner's default counterfactual is a *clean twin*: a
second classifier over the stream's shared table, incrementally
trained on exactly the accepted non-attack arrivals.  Because training
is integer count-addition, the twin's state at every tick must equal
"the main classifier with every trained attack message unlearned" —
which is precisely what the retained ``counterfactual="unlearn"``
reference computes by snapshot/unlearn-all/restore.  These tests make
that equality an enforced differential contract, not an argument:

* the **scenario differential**: every registered ``stream-*``
  scenario, scaled down, run twin-vs-unlearn under both kernels —
  records compared as serialized bytes;
* the **pooled leg**: the same differential with the whole stream
  shipped through a shared :class:`WorkerPool` (workers=2);
* the **property test**: randomized attack schedules at the classifier
  level — interleaved learn-only twin construction vs
  snapshot/unlearn/restore, full state and scores compared exactly;
* the **hash-seed leg**: the twin/unlearn equality holds under
  explicit ``PYTHONHASHSEED`` values in subprocesses, so it does not
  lean on any incidental set-iteration order.
"""

from __future__ import annotations

import dataclasses
import json
import os
import random
import subprocess
import sys
from contextlib import contextmanager
from pathlib import Path

import pytest

from repro.defenses.roni import RoniConfig
from repro.engine.runner import WorkerPool, use_worker_pool
from repro.errors import ExperimentError
from repro.scenarios import get_scenario, scenario_names
from repro.spambayes import ndkernel
from repro.spambayes.ndkernel import create_classifier
from repro.spambayes.token_table import TokenTable
from repro.stream.runner import (
    COUNTERFACTUAL_MODES,
    StreamRunner,
    run_stream_experiment,
)
from repro.stream.spec import StreamSpec

SRC = str(Path(__file__).resolve().parent.parent / "src")

KERNELS = ("nd", "python")

HASH_SEEDS = ("0", "1", "2")


@contextmanager
def forced_kernel(name: str):
    """Pin ``REPRO_KERNEL`` for the duration of one comparison arm."""
    previous = os.environ.get(ndkernel.KERNEL_ENV)
    os.environ[ndkernel.KERNEL_ENV] = name
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop(ndkernel.KERNEL_ENV, None)
        else:
            os.environ[ndkernel.KERNEL_ENV] = previous


def _run_under_hash_seed(script: str, hash_seed: str) -> str:
    env = os.environ.copy()
    env["PYTHONHASHSEED"] = hash_seed
    env["PYTHONPATH"] = SRC + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    result = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True,
        text=True,
        env=env,
        check=False,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout

# Scaled-down overrides per registered stream scenario: small enough
# to keep 6 scenarios x 2 kernels x 2 modes fast, large enough that
# every scenario trains attack mail (so the twin path actually
# diverges from the copy-the-confusion shortcut) — except the clean
# control, which pins the no-attack degenerate case.
_SCENARIO_SCALE: dict[str, dict] = {
    "stream-dictionary-ramp": dict(
        ticks=4,
        ham_per_tick=14,
        spam_per_tick=14,
        attack_start_tick=2,
        attack_per_tick=8,
        ramp_ticks=2,
        test_size=24,
    ),
    "stream-dictionary-vs-roni": dict(
        ticks=3,
        ham_per_tick=24,
        spam_per_tick=24,
        attack_start_tick=2,
        attack_per_tick=5,
        roni=RoniConfig(train_size=8, validation_size=16, trials=2),
        roni_calibration_size=40,
        test_size=24,
    ),
    "stream-focused-vs-roni": dict(
        ticks=3,
        ham_per_tick=24,
        spam_per_tick=24,
        attack_start_tick=2,
        attack_per_tick=5,
        roni=RoniConfig(train_size=8, validation_size=16, trials=2),
        roni_calibration_size=40,
        test_size=24,
    ),
    "stream-usenet-burst": dict(
        ticks=4,
        ham_per_tick=14,
        spam_per_tick=14,
        attack_start_tick=2,
        attack_per_tick=6,
        ramp_ticks=2,
        test_size=24,
    ),
    "stream-threshold-over-time": dict(
        ticks=3,
        ham_per_tick=16,
        spam_per_tick=16,
        attack_start_tick=2,
        attack_per_tick=6,
        test_size=24,
    ),
    "stream-clean-control": dict(
        ticks=3,
        ham_per_tick=14,
        spam_per_tick=14,
        test_size=24,
    ),
}

STREAM_SCENARIOS = tuple(sorted(_SCENARIO_SCALE))


def _scaled_spec(name: str) -> StreamSpec:
    spec = get_scenario(name)
    config = spec.build_config(**_SCENARIO_SCALE[name])
    # measure_clean on everywhere: the differential is about the
    # counterfactual, so every scenario must compute one.
    return dataclasses.replace(config, measure_clean=True, seed=23)


def _record_bytes(result) -> bytes:
    return json.dumps(result.to_record().as_dict(), sort_keys=True).encode()


def test_catalogue_matches_the_scaled_suite():
    # If a stream scenario is added (or renamed) the differential
    # suite must grow with it — fail loudly instead of silently
    # covering a subset.
    registered = tuple(
        sorted(n for n in scenario_names() if n.startswith("stream-"))
    )
    assert registered == STREAM_SCENARIOS


class TestScenarioDifferential:
    @pytest.mark.parametrize("name", STREAM_SCENARIOS)
    @pytest.mark.parametrize("kernel", KERNELS)
    def test_twin_record_equals_unlearn_record(self, name, kernel):
        spec = _scaled_spec(name)
        with forced_kernel(kernel):
            twin = StreamRunner(spec, counterfactual="twin").run()
            unlearn = StreamRunner(spec, counterfactual="unlearn").run()
        assert _record_bytes(twin) == _record_bytes(unlearn)

    def test_kernels_agree_with_each_other(self):
        # One scenario cross-kernel: the twin path on nd must match
        # the unlearn path on python (and vice versa by transitivity
        # with the per-kernel differentials above).
        spec = _scaled_spec("stream-dictionary-ramp")
        with forced_kernel("nd"):
            nd_twin = StreamRunner(spec, counterfactual="twin").run()
        with forced_kernel("python"):
            py_unlearn = StreamRunner(spec, counterfactual="unlearn").run()
        assert _record_bytes(nd_twin) == _record_bytes(py_unlearn)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ExperimentError, match="counterfactual"):
            StreamRunner(StreamSpec(), counterfactual="oracle")
        assert COUNTERFACTUAL_MODES == ("twin", "unlearn")

    def test_pooled_stream_matches_sequential_both_modes(self):
        # Workers leg: the whole-stream task shipped through a shared
        # pool (how `repro replicate stream-*` runs it) must produce
        # the same bytes the sequential twin and unlearn paths do.
        spec = _scaled_spec("stream-usenet-burst")
        sequential = _record_bytes(StreamRunner(spec, "twin").run())
        reference = _record_bytes(StreamRunner(spec, "unlearn").run())
        with WorkerPool(2) as pool:
            with use_worker_pool(pool):
                pooled = _record_bytes(
                    run_stream_experiment(dataclasses.replace(spec, workers=2))
                )
        assert pooled == sequential == reference


# ----------------------------------------------------------------------
# Classifier-level property test: randomized schedules
# ----------------------------------------------------------------------


def _random_message(rng: random.Random, table: TokenTable):
    tokens = {f"w{rng.randrange(300)}" for _ in range(rng.randint(1, 30))}
    return table.encode_unique(tokens)


def _full_state(classifier):
    return (
        classifier.nspam,
        classifier.nham,
        {
            token: (record.spamcount, record.hamcount)
            for token, record in (
                (t, classifier.word_info(t)) for t in classifier.iter_vocabulary()
            )
        },
    )


@pytest.mark.parametrize("seed", [5, 17, 41])
@pytest.mark.parametrize("kernel", KERNELS)
def test_interleaved_twin_matches_snapshot_unlearn_restore(seed, kernel):
    """Randomized attack schedules: twin == unlearn, byte for byte.

    One shared table; a "stream" of randomly interleaved legitimate
    and attack trainings.  After every simulated tick, the learn-only
    twin's full state and its scores on a fixed test batch must equal
    the main classifier's after unlearning the attack history inside a
    snapshot (restored afterward — the main line must be untouched).
    """
    rng = random.Random(seed)
    with forced_kernel(kernel):
        table = TokenTable()
        main = create_classifier(table=table)
        twin = create_classifier(table=table)
        test_batch = [_random_message(rng, table) for _ in range(12)]
        attack_history: list = []
        for tick in range(8):
            # A random per-tick mix: legit ham, legit spam, attack spam.
            for _ in range(rng.randint(1, 6)):
                ids = _random_message(rng, table)
                is_spam = rng.random() < 0.5
                main.learn_ids(ids, is_spam)
                twin.learn_ids(ids, is_spam)
            for _ in range(rng.randint(0, 4)):
                ids = _random_message(rng, table)
                main.learn_ids(ids, True)
                attack_history.append(ids)

            before = _full_state(main)
            snap = main.snapshot()
            try:
                for ids in attack_history:
                    main.unlearn_ids(ids, True)
                assert _full_state(main) == _full_state(twin)
                unlearn_scores = [main.score_ids(ids) for ids in test_batch]
            finally:
                main.restore(snap)
            assert _full_state(main) == before
            twin_scores = [twin.score_ids(ids) for ids in test_batch]
            assert twin_scores == unlearn_scores


# ----------------------------------------------------------------------
# Hash-seed leg: the equality is not an artifact of set ordering
# ----------------------------------------------------------------------


_TWIN_DIFFERENTIAL_SCRIPT = """
import json
from repro.stream.runner import StreamRunner
from repro.stream.spec import StreamSpec

spec = StreamSpec(
    ticks=3, ham_per_tick=12, spam_per_tick=12,
    attack_start_tick=2, attack_per_tick=5,
    test_size=20, measure_clean=True, seed=13,
)
twin = StreamRunner(spec, counterfactual="twin").run()
unlearn = StreamRunner(spec, counterfactual="unlearn").run()
print(json.dumps({
    "twin": twin.to_record().as_dict(),
    "unlearn": unlearn.to_record().as_dict(),
}, sort_keys=True))
"""


@pytest.mark.slow
def test_twin_differential_identical_across_hash_seeds():
    outputs = [
        _run_under_hash_seed(_TWIN_DIFFERENTIAL_SCRIPT, seed) for seed in HASH_SEEDS
    ]
    parsed = [json.loads(output) for output in outputs]
    for payload in parsed:
        assert payload["twin"] == payload["unlearn"]
    for other in parsed[1:]:
        assert other == parsed[0]
