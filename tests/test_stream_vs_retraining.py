"""Differential: the stream engine vs the legacy weekly loop.

``run_retraining_simulation`` is now a thin delegation onto
:class:`repro.stream.StreamRunner`; the original inline loop is
retained verbatim as
:func:`repro.experiments.retraining.sequential_reference_retraining`.
These tests hold the two side by side — under **both** defenses — and
assert every weekly outcome identical, field for field: same arrival
slices, same attack batches, same RONI calibration draws, same
confusion counts.  Also covers the relocated
``attack_messages_as_dataset`` helper's deprecated re-export.
"""

from __future__ import annotations

import pytest

from repro.experiments.retraining import (
    RetrainingConfig,
    run_retraining_simulation,
    sequential_reference_retraining,
)


def quick_config(**overrides) -> RetrainingConfig:
    defaults = dict(
        weeks=4,
        ham_per_week=30,
        spam_per_week=30,
        attack_start_week=2,
        attack_per_week=6,
        roni_calibration_size=100,
        test_size=80,
        seed=17,
    )
    defaults.update(overrides)
    return RetrainingConfig(**defaults)


def outcome_fields(result) -> list[tuple]:
    return [
        (
            week.week,
            week.trained_messages,
            week.attack_sent,
            week.attack_trained,
            week.attack_rejected,
            week.legitimate_rejected,
            week.confusion.as_dict(),
        )
        for week in result.weeks
    ]


@pytest.mark.slow
class TestStreamReproducesLegacyLoop:
    @pytest.mark.parametrize("defense", ["none", "roni"])
    def test_weekly_outcomes_identical_field_for_field(self, defense):
        config = quick_config(defense=defense)
        reference = sequential_reference_retraining(config)
        delegated = run_retraining_simulation(config)
        assert outcome_fields(delegated) == outcome_fields(reference)

    def test_config_rides_the_delegated_result(self):
        config = quick_config(weeks=2, attack_start_week=3)
        result = run_retraining_simulation(config)
        assert result.config is config
        assert [w.week for w in result.weeks] == [1, 2]

    def test_delegation_survives_different_seeds(self):
        # A second root seed: the equivalence is structural, not a
        # single lucky draw.
        config = quick_config(weeks=3, seed=404)
        assert outcome_fields(run_retraining_simulation(config)) == outcome_fields(
            sequential_reference_retraining(config)
        )


class TestAttackDataRelocation:
    def test_threshold_exp_reexport_is_the_shared_helper(self):
        from repro.experiments import attack_data, threshold_exp

        assert (
            threshold_exp.attack_messages_as_dataset
            is attack_data.attack_messages_as_dataset
        )
        assert "attack_messages_as_dataset" in threshold_exp.__all__

    def test_helper_materializes_batches(self, tiny_corpus):
        import random

        from repro.attacks.dictionary import OptimalDictionaryAttack
        from repro.experiments.attack_data import attack_messages_as_dataset

        attack = OptimalDictionaryAttack.from_vocabulary(tiny_corpus.vocabulary)
        batch = attack.generate(3, random.Random(5))
        messages = attack_messages_as_dataset(batch, start=100)
        assert len(messages) == 3
        assert all(message.is_spam for message in messages)
        assert messages[0].msgid.endswith("000100")
        # Token caches are pre-seeded with the payload.
        assert messages[0].tokens() == batch.groups[0].training_tokens
