"""Tests for the dynamic threshold defense."""

from __future__ import annotations

import pytest

from repro.defenses.threshold import (
    DynamicThresholdConfig,
    DynamicThresholdDefense,
    _utility_curve,
)
from repro.errors import DefenseError
from repro.rng import SeedSpawner
from repro.spambayes.filter import Label


class TestConfig:
    @pytest.mark.parametrize("quantile", [0.0, 0.5, 0.7, -0.1])
    def test_invalid_quantile_rejected(self, quantile):
        with pytest.raises(DefenseError):
            DynamicThresholdConfig(quantile=quantile)

    @pytest.mark.parametrize("fraction", [0.0, 1.0])
    def test_invalid_split_rejected(self, fraction):
        with pytest.raises(DefenseError):
            DynamicThresholdConfig(split_fraction=fraction)


class TestUtilityCurve:
    def test_boundary_values(self):
        g = _utility_curve([0.1, 0.2], [0.8, 0.9])
        assert g(0.0) == 0.0  # no spam below, both ham above -> 0
        assert g(1.0) == 1.0  # all spam below, no ham above -> 1

    def test_monotone_nondecreasing(self):
        ham = [0.05, 0.1, 0.3, 0.4]
        spam = [0.6, 0.7, 0.85, 0.95]
        g = _utility_curve(ham, spam)
        values = [g(t / 20) for t in range(21)]
        assert values == sorted(values)

    def test_no_boundary_errors_returns_half(self):
        g = _utility_curve([0.5], [0.5])
        assert g(0.5) == 0.5


class TestFitFromScores:
    def _defense(self, quantile=0.05) -> DynamicThresholdDefense:
        return DynamicThresholdDefense(DynamicThresholdConfig(quantile=quantile))

    def test_separable_scores_bracket_the_gap(self):
        # Ham at 0.01..0.29, spam at 0.70..0.99: θ0 hugs the top of the
        # ham distribution, θ1 the bottom of the spam distribution (the
        # utility is 0/0 deep in the gap, where our g returns the 0.5
        # sentinel, so thresholds stay next to observed scores).
        ham = [0.01 * i for i in range(1, 30)]       # 0.01 .. 0.29
        spam = [0.7 + 0.01 * i for i in range(30)]   # 0.70 .. 0.99
        fit = self._defense().fit_from_scores(ham, spam)
        assert 0.27 <= fit.ham_cutoff <= 0.70
        assert 0.29 <= fit.spam_cutoff <= 0.72
        assert fit.ham_cutoff <= fit.spam_cutoff

    def test_shifted_scores_shift_thresholds(self):
        """The defense's premise: shift all scores up, thresholds follow."""
        ham = [0.5 + 0.01 * i for i in range(20)]    # 0.50 .. 0.69
        spam = [0.9 + 0.004 * i for i in range(20)]  # 0.90 .. 0.976
        fit = self._defense().fit_from_scores(ham, spam)
        assert fit.ham_cutoff > 0.5
        assert fit.spam_cutoff > fit.ham_cutoff

    def test_collapse_on_heavy_overlap(self):
        # Identical distributions: the quantile targets cross; the fit
        # must still return a valid ordered pair.
        scores = [0.4, 0.5, 0.6] * 10
        fit = self._defense(quantile=0.4).fit_from_scores(list(scores), list(scores))
        assert fit.ham_cutoff <= fit.spam_cutoff

    def test_quantile_010_narrower_than_005(self):
        ham = [0.01 * i for i in range(1, 50)]
        spam = [0.5 + 0.01 * i for i in range(50)]
        wide = self._defense(0.05).fit_from_scores(ham, spam)
        narrow = self._defense(0.10).fit_from_scores(ham, spam)
        wide_band = wide.spam_cutoff - wide.ham_cutoff
        narrow_band = narrow.spam_cutoff - narrow.ham_cutoff
        assert narrow_band <= wide_band

    def test_empty_scores_rejected(self):
        with pytest.raises(DefenseError):
            self._defense().fit_from_scores([], [0.5])
        with pytest.raises(DefenseError):
            self._defense().fit_from_scores([0.5], [])

    def test_validation_size_recorded(self):
        fit = self._defense().fit_from_scores([0.1, 0.2], [0.8, 0.9])
        assert fit.validation_size == 4


class TestFitOnDataset:
    def test_fit_and_build_filter(self, small_corpus):
        training = small_corpus.dataset.sample_inbox(300, 0.5, SeedSpawner(31).rng("t"))
        defense = DynamicThresholdDefense()
        spam_filter, fit = defense.build_filter(training, SeedSpawner(31).rng("f"))
        assert spam_filter.ham_cutoff == fit.ham_cutoff
        assert spam_filter.spam_cutoff == fit.spam_cutoff
        # The deployed filter is trained on the full set.
        assert spam_filter.classifier.nspam + spam_filter.classifier.nham == 300

    def test_clean_data_gives_sane_thresholds(self, small_corpus):
        training = small_corpus.dataset.sample_inbox(300, 0.5, SeedSpawner(32).rng("t"))
        fit = DynamicThresholdDefense().fit(training, SeedSpawner(32).rng("f"))
        # On clean, separable data the fitted band sits in the middle.
        assert 0.0 < fit.ham_cutoff < 1.0
        assert 0.0 < fit.spam_cutoff <= 1.0

    def test_missing_class_rejected(self, small_corpus):
        ham_only = small_corpus.dataset.filtered(lambda m: not m.is_spam).subset(range(50))
        with pytest.raises(DefenseError):
            DynamicThresholdDefense().fit(ham_only, SeedSpawner(33).rng("f"))

    def test_defended_filter_still_classifies_clean_data(self, small_corpus):
        training = small_corpus.dataset.sample_inbox(300, 0.5, SeedSpawner(34).rng("t"))
        spam_filter, _ = DynamicThresholdDefense().build_filter(
            training, SeedSpawner(34).rng("f")
        )
        inbox_ids = {m.msgid for m in training}
        held_out = [m for m in small_corpus.dataset if m.msgid not in inbox_ids][:100]
        correct = sum(
            1
            for m in held_out
            if spam_filter.classify_tokens(m.tokens()).label
            is (Label.SPAM if m.is_spam else Label.HAM)
        )
        assert correct > 60
