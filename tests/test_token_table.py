"""Differential suite: the interned-ID classifier core vs the retained
dict-keyed reference core.

The tentpole claim of the TokenTable refactor is *bit-exactness*: the
columnar core (:class:`repro.spambayes.classifier.Classifier`) must
produce float-for-float identical scores, snapshots and persistence
round-trips to the PR-1 implementation
(:class:`repro.spambayes.reference.ReferenceClassifier`) on any input.
These tests run both cores side by side on randomized corpora through
every mutation pattern the experiment harness uses — incremental
learn/unlearn, grouped repetition, RONI-style learn/score/unlearn
cycling, snapshot/restore fold derivation — and compare with ``==``,
never ``pytest.approx``.
"""

from __future__ import annotations

import pickle
import random
from array import array

import pytest

from repro.corpus.dataset import Dataset, LabeledMessage
from repro.corpus.trec import TrecStyleCorpus
from repro.corpus.vocabulary import TINY_PROFILE
from repro.defenses.roni import RoniConfig, RoniDefense
from repro.engine.sweep import SweepSpec, run_attack_sweeps, sequential_reference_sweep
from repro.errors import TrainingError
from repro.spambayes.classifier import Classifier
from repro.spambayes.graham import GrahamClassifier
from repro.spambayes.message import Email
from repro.spambayes.options import ClassifierOptions
from repro.spambayes.persistence import classifier_from_dict, classifier_to_dict
from repro.spambayes.reference import ReferenceClassifier
from repro.spambayes.token_table import TokenTable


# ----------------------------------------------------------------------
# TokenTable unit behaviour
# ----------------------------------------------------------------------


class TestTokenTable:
    def test_intern_assigns_dense_stable_ids(self):
        table = TokenTable()
        first = table.intern("alpha")
        second = table.intern("beta")
        assert (first, second) == (0, 1)
        assert table.intern("alpha") == first  # stable on re-intern
        assert len(table) == 2
        assert table.token(first) == "alpha"
        assert table.id_of("beta") == second
        assert table.id_of("gamma") is None
        assert "alpha" in table and "gamma" not in table

    def test_iteration_follows_id_order(self):
        table = TokenTable(["c", "a", "b", "a"])
        assert list(table) == ["c", "a", "b"]

    def test_encode_unique_sorted_and_deduplicated(self):
        table = TokenTable()
        ids = table.encode_unique(["wire", "cash", "wire", "now", "cash"])
        assert isinstance(ids, array)
        assert list(ids) == sorted(set(ids))
        assert len(ids) == 3
        assert sorted(table.decode(ids)) == ["cash", "now", "wire"]

    def test_encode_is_append_only(self):
        table = TokenTable()
        before = table.encode_unique({"one", "two"})
        table.encode_unique({"three", "two"})
        # Earlier encodings stay valid: IDs never shift.
        assert table.decode(before) == [table.token(tid) for tid in before]
        assert len(table) == 3

    def test_pickle_preserves_ids(self):
        table = TokenTable(["x", "y", "z"])
        clone = pickle.loads(pickle.dumps(table))
        assert list(clone) == list(table)
        assert clone.id_of("y") == table.id_of("y")
        assert clone.intern("w") == 3  # interning continues densely


class TestMessageEncoding:
    def test_token_ids_cached_per_table(self):
        message = LabeledMessage(Email(body="cheap cash wire now", msgid="m1"), True)
        table = TokenTable()
        first = message.token_ids(table)
        assert message.token_ids(table) is first  # cached
        other = TokenTable()
        re_encoded = message.token_ids(other)
        assert re_encoded is not first  # different table -> re-encode
        assert message.token_ids(other) is re_encoded

    def test_invalidate_tokens_clears_encoding(self):
        message = LabeledMessage(Email(body="cheap cash", msgid="m2"), True)
        table = TokenTable()
        first = message.token_ids(table)
        message.invalidate_tokens()
        assert message.token_ids(table) is not first

    def test_dataset_encode_populates_all(self):
        corpus = TrecStyleCorpus.generate(n_ham=20, n_spam=20, profile=TINY_PROFILE, seed=5)
        table = corpus.dataset.encode()
        for message in corpus.dataset:
            ids = message.token_ids(table)
            assert list(ids) == sorted(set(ids))
            assert set(table.decode(ids)) == set(message.tokens())


# ----------------------------------------------------------------------
# Differential harness
# ----------------------------------------------------------------------


def _random_messages(rng, vocab, count, novel_prefix=""):
    messages = []
    for index in range(count):
        tokens = set(rng.sample(vocab, rng.randint(3, 40)))
        if novel_prefix:
            tokens.add(f"{novel_prefix}{index}")
        messages.append((frozenset(tokens), rng.random() < 0.5))
    return messages


def _paired(options=None):
    if options is None:
        return Classifier(), ReferenceClassifier()
    return Classifier(options), ReferenceClassifier(options)


def _assert_same_state(id_core: Classifier, reference: ReferenceClassifier):
    assert id_core.nspam == reference.nspam
    assert id_core.nham == reference.nham
    assert id_core.vocabulary_size == reference.vocabulary_size
    assert sorted(id_core.iter_vocabulary()) == sorted(reference.iter_vocabulary())
    for token in reference.iter_vocabulary():
        record = id_core.word_info(token)
        expected = reference.word_info(token)
        assert (record.spamcount, record.hamcount) == (
            expected.spamcount,
            expected.hamcount,
        )


OPTION_VARIANTS = [
    ClassifierOptions(),
    ClassifierOptions(unknown_word_strength=0.0),
    ClassifierOptions(minimum_prob_strength=0.0, max_discriminators=15),
    ClassifierOptions(unknown_word_prob=0.4, max_discriminators=50),
]


class TestDifferentialScoring:
    @pytest.mark.parametrize("options", OPTION_VARIANTS)
    def test_scores_bit_identical_after_training(self, options):
        rng = random.Random(7)
        vocab = [f"tok{i}" for i in range(400)]
        id_core, reference = _paired(options)
        for tokens, is_spam in _random_messages(rng, vocab, 250):
            id_core.learn(tokens, is_spam)
            reference.learn(tokens, is_spam)
        queries = [frozenset(rng.sample(vocab, rng.randint(3, 60))) for _ in range(150)]
        assert id_core.score_many(queries) == reference.score_many(queries)
        assert [id_core.score(q) for q in queries[:25]] == [
            reference.score(q) for q in queries[:25]
        ]
        encoded = [id_core.encode_tokens(q) for q in queries]
        assert id_core.score_many_ids(encoded) == reference.score_many(queries)
        # Second encoded pass exercises the message-score memo.
        assert id_core.score_many_ids(encoded) == reference.score_many(queries)
        assert all(id_core.spam_prob(t) == reference.spam_prob(t) for t in vocab)
        _assert_same_state(id_core, reference)

    def test_roni_style_learn_score_unlearn_cycling(self):
        """The targeted-eviction path: globals return to the memo tag."""
        rng = random.Random(31)
        vocab = [f"w{i}" for i in range(350)]
        id_core, reference = _paired()
        for tokens, is_spam in _random_messages(rng, vocab, 150):
            id_core.learn(tokens, is_spam)
            reference.learn(tokens, is_spam)
        queries = [frozenset(rng.sample(vocab, rng.randint(5, 50))) for _ in range(40)]
        encoded = [id_core.encode_tokens(q) for q in queries]
        for k in range(40):
            candidate = frozenset(
                rng.sample(vocab, rng.randint(5, 60)) + [f"novel{k}"]
            )
            label = rng.random() < 0.7
            id_core.learn(candidate, label)
            reference.learn(candidate, label)
            assert id_core.score_many_ids(encoded) == reference.score_many(queries)
            id_core.unlearn(candidate, label)
            reference.unlearn(candidate, label)
            assert id_core.score_many_ids(encoded) == reference.score_many(queries)
        _assert_same_state(id_core, reference)

    def test_snapshot_restore_round_trips_bit_exact(self):
        rng = random.Random(13)
        vocab = [f"v{i}" for i in range(300)]
        id_core, reference = _paired()
        for tokens, is_spam in _random_messages(rng, vocab, 120):
            id_core.learn(tokens, is_spam)
            reference.learn(tokens, is_spam)
        queries = [frozenset(rng.sample(vocab, 30)) for _ in range(30)]
        encoded = [id_core.encode_tokens(q) for q in queries]
        baseline = reference.score_many(queries)
        for round_index in range(12):
            id_snap = id_core.snapshot()
            ref_snap = reference.snapshot()
            batch = frozenset(rng.sample(vocab, 50)) | {f"atk{round_index}"}
            id_core.learn_repeated(batch, True, 7)
            reference.learn_repeated(batch, True, 7)
            stripe = _random_messages(rng, vocab, 5)
            for tokens, is_spam in stripe:
                id_core.learn(tokens, is_spam)
                reference.learn(tokens, is_spam)
            assert id_core.score_many_ids(encoded) == reference.score_many(queries)
            id_core.restore(id_snap)
            reference.restore(ref_snap)
            assert id_core.score_many_ids(encoded) == baseline
            assert reference.score_many(queries) == baseline
        _assert_same_state(id_core, reference)

    def test_empty_token_set_training_still_invalidates_memos(self):
        """Regression: a mutation with no tokens still moves (nspam,
        nham), which every memoized probability depends on."""
        id_core, reference = _paired()
        id_core.learn(["a", "b"], True)
        reference.learn(["a", "b"], True)
        id_core.learn(["a"], False)
        reference.learn(["a"], False)
        assert id_core.score(["a", "b"]) == reference.score(["a", "b"])
        id_core.learn([], True)  # empty message: counts move, no tokens
        reference.learn([], True)
        assert id_core.score(["a", "b"]) == reference.score(["a", "b"])
        ids = id_core.encode_tokens(["a", "b"])
        assert id_core.score_ids(ids) == reference.score(["a", "b"])
        id_core.unlearn([], True)
        reference.unlearn([], True)
        assert id_core.score_ids(ids) == reference.score(["a", "b"])

    def test_scoring_never_interns_unseen_tokens(self):
        """Scoring is read-only on the vocabulary: unseen query tokens
        score the prior without growing the shared table."""
        id_core, reference = _paired()
        id_core.learn({"cash", "wire"}, True)
        reference.learn({"cash", "wire"}, True)
        id_core.learn({"meeting"}, False)
        reference.learn({"meeting"}, False)
        table_size = len(id_core.table)
        queries = [
            {"cash", "never-seen-1"},
            {"never-seen-2", "never-seen-3", "meeting"},
            {"never-seen-1"},
        ]
        assert id_core.score_many(queries) == reference.score_many(queries)
        assert [id_core.score(q) for q in queries] == [
            reference.score(q) for q in queries
        ]
        assert id_core.spam_prob("never-seen-4") == reference.spam_prob("never-seen-4")
        evidence = id_core.significant_tokens({"cash", "never-seen-5"})
        expected = reference.significant_tokens({"cash", "never-seen-5"})
        assert [(ts.token, ts.spam_prob) for ts in evidence] == expected
        assert len(id_core.table) == table_size  # nothing interned

    def test_repeated_and_unlearn_validation_parity(self):
        id_core, reference = _paired()
        id_core.learn_repeated({"a", "b"}, True, 5)
        reference.learn_repeated({"a", "b"}, True, 5)
        with pytest.raises(TrainingError):
            id_core.unlearn_repeated({"a"}, True, 6)
        with pytest.raises(TrainingError):
            id_core.unlearn({"zzz-never-seen"}, True)
        # Failed unlearns leave the state untouched, like the reference.
        _assert_same_state(id_core, reference)

    def test_graham_subclass_uses_same_columns(self):
        rng = random.Random(3)
        vocab = [f"g{i}" for i in range(150)]
        graham = GrahamClassifier()
        messages = _random_messages(rng, vocab, 120)
        for tokens, is_spam in messages:
            graham.learn(tokens, is_spam)
        queries = [frozenset(rng.sample(vocab, 20)) for _ in range(40)]
        assert graham.score_many(queries) == [graham.score(q) for q in queries]
        encoded = [graham.encode_tokens(q) for q in queries]
        assert graham.score_many_ids(encoded) == [graham.score(q) for q in queries]


class TestDifferentialPersistence:
    def test_dump_identical_between_cores_and_round_trips(self, tmp_path):
        rng = random.Random(17)
        vocab = [f"p{i}" for i in range(200)]
        id_core, reference = _paired()
        for tokens, is_spam in _random_messages(rng, vocab, 100):
            id_core.learn(tokens, is_spam)
            reference.learn(tokens, is_spam)
        dump = classifier_to_dict(id_core)
        assert dump["nspam"] == reference.nspam
        assert dump["nham"] == reference.nham
        assert dump["words"] == {
            token: [
                reference.word_info(token).spamcount,
                reference.word_info(token).hamcount,
            ]
            for token in sorted(reference.iter_vocabulary())
        }
        restored = classifier_from_dict(dump)
        queries = [frozenset(rng.sample(vocab, 25)) for _ in range(40)]
        assert restored.score_many(queries) == reference.score_many(queries)
        _assert_same_state(restored, reference)

    def test_pickle_round_trip_preserves_scores(self):
        rng = random.Random(23)
        vocab = [f"q{i}" for i in range(150)]
        id_core, reference = _paired()
        for tokens, is_spam in _random_messages(rng, vocab, 80):
            id_core.learn(tokens, is_spam)
            reference.learn(tokens, is_spam)
        clone = pickle.loads(pickle.dumps(id_core))
        queries = [frozenset(rng.sample(vocab, 25)) for _ in range(30)]
        assert clone.score_many(queries) == reference.score_many(queries)
        # Shared-table identity survives one pickle graph.
        context = {"model": id_core, "table": id_core.table}
        thawed = pickle.loads(pickle.dumps(context))
        assert thawed["model"].table is thawed["table"]


# ----------------------------------------------------------------------
# Harness-level equivalence (engine + RONI)
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def small_corpus():
    return TrecStyleCorpus.generate(n_ham=90, n_spam=90, profile=TINY_PROFILE, seed=29)


class TestHarnessEquivalence:
    def test_sweep_bit_identical_at_any_worker_count(self, small_corpus):
        from repro.attacks.dictionary import OptimalDictionaryAttack

        inbox = small_corpus.dataset.sample_inbox(120, 0.5, random.Random(4))
        inbox.tokenize_all()
        attack = OptimalDictionaryAttack.from_vocabulary(small_corpus.vocabulary)

        def sweep(workers):
            spec = SweepSpec(key="optimal", attack=attack, fractions=(0.0, 0.02, 0.05))
            return run_attack_sweeps(
                inbox, [(spec, random.Random(11))], folds=3, workers=workers
            )[0].confusion_dicts()

        sequential = sequential_reference_sweep(
            inbox, attack, (0.0, 0.02, 0.05), 3, random.Random(11)
        )
        expected = [point.confusion.as_dict() for point in sequential]
        assert sweep(1) == expected
        assert sweep(2) == expected

    def test_roni_measure_many_matches_per_message(self, small_corpus):
        pool = small_corpus.dataset.sample_inbox(80, 0.5, random.Random(6))
        pool.tokenize_all()
        table = pool.encode()
        defense = RoniDefense(
            pool,
            random.Random(8),
            config=RoniConfig(train_size=10, validation_size=20, trials=3),
            table=table,
        )
        candidates = small_corpus.dataset.spam[:8] + small_corpus.dataset.ham[:4]
        batched = defense.measure_many(candidates)
        singly = [defense.measure(message) for message in candidates]
        assert batched == singly
        # Gate decisions line up with the measurements.
        accepted, rejected = defense.filter_messages(candidates)
        threshold = defense.config.ham_as_ham_threshold
        expected_rejected = [
            m
            for m, measurement in zip(candidates, batched)
            if measurement.ham_as_ham_decrease >= threshold
        ]
        assert rejected == expected_rejected
        assert len(accepted) + len(rejected) == len(candidates)

    def test_shared_table_across_classifiers(self, small_corpus):
        """Two classifiers on one table see each other's interning only."""
        inbox = small_corpus.dataset.sample_inbox(60, 0.5, random.Random(9))
        inbox.tokenize_all()
        table = inbox.encode()
        first = Classifier(table=table)
        second = Classifier(table=table)
        message = inbox[0]
        first.learn_ids(message.token_ids(table), message.is_spam)
        assert second.vocabulary_size == 0  # counts are private
        assert second.table is first.table  # interning is shared
        # Encoded IDs stay valid for both despite later growth.
        second.learn({"entirely-new-token"}, True)
        assert first.score_ids(message.token_ids(table)) == first.score(
            message.tokens()
        )
