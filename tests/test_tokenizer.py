"""Tests for the SpamBayes-style tokenizer."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spambayes.message import Email
from repro.spambayes.tokenizer import (
    DEFAULT_TOKENIZER,
    Tokenizer,
    TokenizerOptions,
    tokenize_text,
)


def body_tokens(text: str) -> list[str]:
    return list(DEFAULT_TOKENIZER.tokenize_body(text))


class TestBodyTokens:
    def test_simple_words_lowercased(self):
        assert body_tokens("Hello WORLD again") == ["hello", "world", "again"]

    def test_short_words_dropped(self):
        assert body_tokens("go to it ok") == []

    def test_three_char_words_kept(self):
        assert "the" in body_tokens("the cat")

    def test_overlong_word_becomes_skip_token(self):
        tokens = body_tokens("a" * 25)
        assert tokens == ["skip:a 20"]

    def test_skip_tokens_can_be_disabled(self):
        tokenizer = Tokenizer(TokenizerOptions(generate_skip_tokens=False))
        assert list(tokenizer.tokenize_body("a" * 25)) == []

    def test_edge_punctuation_stripped(self):
        assert body_tokens("(hello!) ...world,") == ["hello", "world"]

    def test_compound_emits_whole_and_parts(self):
        tokens = body_tokens("buy-now")
        assert "buy-now" in tokens
        assert "buy" in tokens
        assert "now" in tokens

    def test_apostrophes_kept_inside_words(self):
        assert body_tokens("don't") == ["don't"]

    def test_money_token(self):
        assert body_tokens("$1,299.99") == ["money:$"]

    def test_twelve_char_word_kept_thirteen_not(self):
        twelve = "x" * 12
        thirteen = "y" * 13
        tokens = body_tokens(f"{twelve} {thirteen}")
        assert twelve in tokens
        assert thirteen not in tokens
        assert "skip:y 10" in tokens


class TestUrlTokens:
    def test_url_decomposes(self):
        tokens = body_tokens("visit http://deals.example.biz/win/big now")
        assert "proto:http" in tokens
        assert "url:deals.example.biz" in tokens
        assert "url:example.biz" in tokens
        assert "url:win" in tokens
        assert "url:big" in tokens

    def test_https_proto(self):
        assert "proto:https" in body_tokens("https://a.example.com/x")

    def test_www_defaults_to_http(self):
        tokens = body_tokens("www.example.com/page")
        assert "proto:http" in tokens
        assert "url:example.com" in tokens


class TestEmailAddressTokens:
    def test_address_decomposes(self):
        tokens = body_tokens("mail bob.smith@corp.example.com today")
        assert "email name:bob.smith" in tokens
        assert "email addr:corp.example.com" in tokens
        assert "email addr:example.com" in tokens


class TestHeaderTokens:
    def test_subject_words_prefixed(self):
        email = Email(body="", headers=[("Subject", "Cheap Deals Today")])
        tokens = set(DEFAULT_TOKENIZER.tokenize(email))
        assert "subject:cheap" in tokens
        assert "subject:deals" in tokens
        # Header tokens never leak into the body namespace.
        assert "cheap" not in tokens

    def test_from_address_prefixed(self):
        email = Email(body="", headers=[("From", "Alice Smith <alice@corp.example.com>")])
        tokens = set(DEFAULT_TOKENIZER.tokenize(email))
        assert "from:addr:alice" in tokens
        assert "from:addr:corp.example.com" in tokens
        assert "from:name:alice" in tokens

    def test_from_without_address(self):
        email = Email(body="", headers=[("From", "mailer daemon")])
        tokens = set(DEFAULT_TOKENIZER.tokenize(email))
        assert "from:no-address" in tokens

    def test_unlisted_header_contributes_presence_token(self):
        email = Email(body="", headers=[("X-Unusual", "whatever value")])
        tokens = set(DEFAULT_TOKENIZER.tokenize(email))
        assert "header:x-unusual:1" in tokens
        assert all("whatever" not in token for token in tokens)

    def test_headers_can_be_disabled(self):
        tokenizer = Tokenizer(TokenizerOptions(tokenize_headers=False))
        email = Email(body="word", headers=[("Subject", "hello")])
        assert list(tokenizer.tokenize(email)) == ["word"]

    def test_empty_header_block_yields_no_header_tokens(self):
        email = Email(body="hello world message")
        tokens = DEFAULT_TOKENIZER.tokenize(email)
        assert all(":" not in token for token in tokens)


class TestTokenizeText:
    def test_wire_format_gets_header_tokens(self):
        tokens = set(tokenize_text("Subject: offer\n\nbuy cheap pills"))
        assert "subject:offer" in tokens
        assert "cheap" in tokens


@given(st.text(max_size=300))
@settings(max_examples=80)
def test_tokenizer_never_crashes_and_emits_no_empty_tokens(text: str):
    tokens = list(DEFAULT_TOKENIZER.tokenize_body(text))
    assert all(isinstance(token, str) and token for token in tokens)


@given(st.text(alphabet=st.characters(min_codepoint=32, max_codepoint=126), max_size=200))
@settings(max_examples=60)
def test_tokenizer_deterministic(text: str):
    assert list(DEFAULT_TOKENIZER.tokenize_body(text)) == list(
        DEFAULT_TOKENIZER.tokenize_body(text)
    )
