"""Tests for the TREC-style corpus bundle, mbox IO and corpus stats."""

from __future__ import annotations

import pytest

from repro.errors import CorpusError
from repro.corpus.mbox import load_mbox, save_mbox
from repro.corpus.stats import corpus_statistics, coverage_report
from repro.corpus.trec import (
    TREC05_HAM_COUNT,
    TREC05_SPAM_COUNT,
    TrecStyleCorpus,
    load_trec_corpus,
)
from repro.corpus.vocabulary import TINY_PROFILE
from repro.corpus.wordlists import build_aspell_dictionary, build_usenet_wordlist


class TestTrecStyleCorpus:
    def test_explicit_sizes(self, tiny_corpus):
        assert tiny_corpus.dataset.counts() == (120, 120)

    def test_default_prevalence_matches_trec05(self):
        corpus = TrecStyleCorpus.generate(n_ham=100, profile=TINY_PROFILE, seed=1)
        n_ham, n_spam = corpus.dataset.counts()
        trec_ratio = TREC05_SPAM_COUNT / TREC05_HAM_COUNT
        assert n_spam == pytest.approx(n_ham * trec_ratio, abs=2)

    def test_deterministic(self):
        a = TrecStyleCorpus.generate(n_ham=30, n_spam=30, profile=TINY_PROFILE, seed=5)
        b = TrecStyleCorpus.generate(n_ham=30, n_spam=30, profile=TINY_PROFILE, seed=5)
        assert [m.msgid for m in a.dataset] == [m.msgid for m in b.dataset]

    def test_order_carries_no_label_signal(self, tiny_corpus):
        """Labels must be interleaved, not ham-block then spam-block."""
        labels = [m.is_spam for m in tiny_corpus.dataset]
        first_half_spam = sum(labels[: len(labels) // 2])
        assert 30 < first_half_spam < 90

    def test_invalid_sizes_rejected(self):
        with pytest.raises(CorpusError):
            TrecStyleCorpus.generate(n_ham=0, profile=TINY_PROFILE)
        with pytest.raises(CorpusError):
            TrecStyleCorpus.generate(n_ham=5, n_spam=-1, profile=TINY_PROFILE)


class TestRealTrecLoader:
    def _make_layout(self, tmp_path, index_lines, messages):
        full = tmp_path / "full"
        data = tmp_path / "data"
        full.mkdir()
        data.mkdir()
        (full / "index").write_text("\n".join(index_lines) + "\n", encoding="utf-8")
        for name, text in messages.items():
            (data / name).write_text(text, encoding="utf-8")

    def test_loads_standard_layout(self, tmp_path):
        self._make_layout(
            tmp_path,
            ["spam ../data/inmail.1", "ham ../data/inmail.2"],
            {
                "inmail.1": "Subject: buy\n\ncheap pills",
                "inmail.2": "Subject: meeting\n\nagenda attached",
            },
        )
        dataset = load_trec_corpus(tmp_path)
        assert dataset.counts() == (1, 1)
        assert dataset.spam[0].email.subject == "buy"

    def test_limit(self, tmp_path):
        self._make_layout(
            tmp_path,
            ["spam ../data/inmail.1", "ham ../data/inmail.2"],
            {"inmail.1": "a b c", "inmail.2": "d e f"},
        )
        assert len(load_trec_corpus(tmp_path, limit=1)) == 1

    def test_missing_index_rejected(self, tmp_path):
        with pytest.raises(CorpusError):
            load_trec_corpus(tmp_path)

    def test_bad_label_rejected(self, tmp_path):
        self._make_layout(tmp_path, ["junk ../data/inmail.1"], {"inmail.1": "x"})
        with pytest.raises(CorpusError):
            load_trec_corpus(tmp_path)

    def test_malformed_line_rejected(self, tmp_path):
        self._make_layout(tmp_path, ["spam"], {})
        with pytest.raises(CorpusError):
            load_trec_corpus(tmp_path)

    def test_missing_message_file_rejected(self, tmp_path):
        self._make_layout(tmp_path, ["spam ../data/absent.1"], {})
        with pytest.raises(CorpusError):
            load_trec_corpus(tmp_path)


class TestMbox:
    def test_roundtrip(self, tiny_corpus, tmp_path):
        subset = tiny_corpus.dataset.subset(range(10))
        path = tmp_path / "box.mbox"
        assert save_mbox(subset, path) == 10
        loaded = load_mbox(path)
        assert len(loaded) == 10
        for original, restored in zip(subset, loaded):
            assert restored.msgid == original.msgid
            assert restored.is_spam == original.is_spam
            assert restored.email.body == original.email.body
            assert restored.email.headers == original.email.headers

    def test_from_quoting(self, tmp_path):
        from repro.corpus.dataset import Dataset, LabeledMessage
        from repro.spambayes.message import Email

        tricky = Dataset(
            [
                LabeledMessage(
                    Email.build(body="From the start\nnormal line", msgid="m1"),
                    False,
                )
            ]
        )
        path = tmp_path / "box.mbox"
        save_mbox(tricky, path)
        loaded = load_mbox(path)
        assert loaded[0].email.body == "From the start\nnormal line"

    def test_empty_mbox_rejected(self, tmp_path):
        path = tmp_path / "empty.mbox"
        path.write_text("", encoding="utf-8")
        with pytest.raises(CorpusError):
            load_mbox(path)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(CorpusError):
            load_mbox(tmp_path / "absent.mbox")


class TestStats:
    def test_statistics_shape(self, tiny_corpus):
        stats = corpus_statistics(tiny_corpus.dataset)
        assert stats.message_count == 240
        assert stats.distinct_tokens > 100
        assert stats.token_occurrences > stats.distinct_tokens
        assert 0.0 < stats.singleton_fraction < 1.0
        assert stats.mean_tokens_per_message > 20

    def test_coverage_ordering(self, small_corpus):
        """The calibration the attacks rely on: optimal > usenet > aspell."""
        dataset = small_corpus.dataset
        aspell = coverage_report(
            dataset, "aspell", build_aspell_dictionary(small_corpus.vocabulary).words
        )
        usenet = coverage_report(
            dataset, "usenet", build_usenet_wordlist(small_corpus.vocabulary).words
        )
        optimal = coverage_report(dataset, "optimal", small_corpus.vocabulary.all_words())
        assert optimal.distinct_coverage == pytest.approx(1.0)
        assert usenet.distinct_coverage > aspell.distinct_coverage
        assert usenet.occurrence_coverage > aspell.occurrence_coverage
        assert aspell.distinct_coverage > 0.5

    def test_coverage_describe(self, tiny_corpus):
        report = coverage_report(tiny_corpus.dataset, "x", ["nothing"])
        assert "x" in report.describe()
        assert report.distinct_coverage == pytest.approx(0.0, abs=0.01)

    def test_empty_coverage_edges(self):
        from repro.corpus.dataset import Dataset

        report = coverage_report(Dataset([]), "empty", [])
        assert report.distinct_coverage == 0.0
        assert report.occurrence_coverage == 0.0
