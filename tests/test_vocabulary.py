"""Tests for the vocabulary universe and word forge."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.rng import SeedSpawner
from repro.corpus.vocabulary import (
    PAPER_PROFILE,
    SMALL_PROFILE,
    TINY_PROFILE,
    Vocabulary,
    VocabularyProfile,
    WordForge,
)


class TestProfiles:
    def test_paper_profile_calibration(self):
        # The membership arithmetic must reproduce the paper's counts.
        assert PAPER_PROFILE.aspell_size == 98_568
        assert PAPER_PROFILE.usenet_pool_size == 91_160

    def test_small_profile_is_tenth_scale(self):
        ratio = PAPER_PROFILE.aspell_size / SMALL_PROFILE.aspell_size
        assert 9.5 < ratio < 10.5

    def test_invalid_profiles_rejected(self):
        with pytest.raises(ConfigurationError):
            VocabularyProfile(name="bad", core_size=0, formal_size=1, colloquial_size=1,
                              ham_topic_size=1, spam_shared_size=1, spam_unlisted_size=1,
                              entity_size=1)
        with pytest.raises(ConfigurationError):
            VocabularyProfile(name="bad", core_size=10, formal_size=-1, colloquial_size=1,
                              ham_topic_size=1, spam_shared_size=1, spam_unlisted_size=1,
                              entity_size=1)

    def test_total_size(self):
        assert TINY_PROFILE.total_size == sum(
            (
                TINY_PROFILE.core_size,
                TINY_PROFILE.formal_size,
                TINY_PROFILE.colloquial_size,
                TINY_PROFILE.ham_topic_size,
                TINY_PROFILE.spam_shared_size,
                TINY_PROFILE.spam_unlisted_size,
                TINY_PROFILE.entity_size,
            )
        )


class TestVocabularyBuild:
    def test_slice_sizes_match_profile(self, tiny_vocabulary):
        vocab, profile = tiny_vocabulary, TINY_PROFILE
        assert len(vocab.core) == profile.core_size
        assert len(vocab.formal) == profile.formal_size
        assert len(vocab.colloquial) == profile.colloquial_size
        assert len(vocab.ham_topic) == profile.ham_topic_size
        assert len(vocab.spam_shared) == profile.spam_shared_size
        assert len(vocab.spam_unlisted) == profile.spam_unlisted_size
        assert len(vocab.entity) == profile.entity_size
        assert len(vocab) == profile.total_size

    def test_slices_disjoint(self, tiny_vocabulary):
        slices = [
            set(tiny_vocabulary.core),
            set(tiny_vocabulary.formal),
            set(tiny_vocabulary.colloquial),
            set(tiny_vocabulary.ham_topic),
            set(tiny_vocabulary.spam_shared),
            set(tiny_vocabulary.spam_unlisted),
            set(tiny_vocabulary.entity),
        ]
        union = set()
        total = 0
        for piece in slices:
            union |= piece
            total += len(piece)
        assert len(union) == total

    def test_deterministic(self):
        a = Vocabulary.build(TINY_PROFILE, seed=5)
        b = Vocabulary.build(TINY_PROFILE, seed=5)
        assert a.core == b.core
        assert a.entity == b.entity

    def test_seed_changes_words(self):
        a = Vocabulary.build(TINY_PROFILE, seed=5)
        b = Vocabulary.build(TINY_PROFILE, seed=6)
        assert a.core != b.core

    def test_words_fit_tokenizer_band(self, tiny_vocabulary):
        for word in tiny_vocabulary.all_words():
            assert 3 <= len(word) <= 12, word

    def test_all_words_iterates_everything(self, tiny_vocabulary):
        assert sum(1 for _ in tiny_vocabulary.all_words()) == len(tiny_vocabulary)

    def test_slice_of(self, tiny_vocabulary):
        assert tiny_vocabulary.slice_of(tiny_vocabulary.core[0]) == "core"
        assert tiny_vocabulary.slice_of(tiny_vocabulary.entity[0]) == "entity"
        assert tiny_vocabulary.slice_of("definitely-not-a-word!") is None

    def test_aspell_words_composition(self, tiny_vocabulary):
        aspell = set(tiny_vocabulary.aspell_words())
        assert set(tiny_vocabulary.core) <= aspell
        assert set(tiny_vocabulary.formal) <= aspell
        assert not (set(tiny_vocabulary.colloquial) & aspell)
        assert not (set(tiny_vocabulary.entity) & aspell)

    def test_usenet_pool_composition(self, tiny_vocabulary):
        pool = set(tiny_vocabulary.usenet_pool())
        assert set(tiny_vocabulary.core) <= pool
        assert set(tiny_vocabulary.colloquial) <= pool
        assert not (set(tiny_vocabulary.formal) & pool)
        assert not (set(tiny_vocabulary.entity) & pool)
        assert set(tiny_vocabulary.spam_unlisted_slangy) <= pool


class TestWordForge:
    def _forge(self) -> WordForge:
        return WordForge(SeedSpawner(1).spawn("forge-test"))

    def test_words_unique(self):
        forge = self._forge()
        words = forge.words(500)
        assert len(set(words)) == 500

    def test_misspelling_differs_from_source(self):
        forge = self._forge()
        word = forge.word()
        variant = forge.misspelling_of(word)
        assert variant != word
        assert 3 <= len(variant) <= 12

    def test_obfuscation_differs_from_source(self):
        forge = self._forge()
        word = forge.word()
        variant = forge.obfuscation_of(word)
        assert variant != word
        assert any(ch.isdigit() or ch == "v" for ch in variant)

    def test_entity_has_digits(self):
        forge = self._forge()
        for _ in range(10):
            assert any(ch.isdigit() for ch in forge.entity())
