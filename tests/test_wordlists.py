"""Tests for the Aspell/Usenet attack word sources."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.corpus.vocabulary import PAPER_PROFILE, SMALL_PROFILE, Vocabulary
from repro.corpus.wordlists import (
    AttackWordlist,
    build_aspell_dictionary,
    build_usenet_wordlist,
)


@pytest.fixture(scope="module")
def small_vocab() -> Vocabulary:
    return Vocabulary.build(SMALL_PROFILE, seed=7)


class TestAspell:
    def test_size_matches_profile(self, small_vocab):
        aspell = build_aspell_dictionary(small_vocab)
        assert len(aspell) == SMALL_PROFILE.aspell_size

    def test_alphabetical(self, small_vocab):
        aspell = build_aspell_dictionary(small_vocab)
        assert list(aspell.words) == sorted(aspell.words)

    def test_no_slang_no_entities(self, small_vocab):
        aspell = build_aspell_dictionary(small_vocab).as_set()
        assert not (aspell & set(small_vocab.colloquial))
        assert not (aspell & set(small_vocab.entity))
        assert not (aspell & set(small_vocab.spam_unlisted))


class TestUsenet:
    def test_default_size_is_top_slice_of_pool(self, small_vocab):
        usenet = build_usenet_wordlist(small_vocab)
        pool_size = SMALL_PROFILE.usenet_pool_size
        assert len(usenet) < pool_size
        assert len(usenet) > 0.95 * pool_size

    def test_overlap_with_aspell_calibrated(self, small_vocab):
        """Paper: |Aspell|=98,568, |Usenet|=90,000, overlap ~61,000 —
        i.e. ~62% of Aspell; same proportion must hold at small scale."""
        aspell = build_aspell_dictionary(small_vocab)
        usenet = build_usenet_wordlist(small_vocab)
        overlap = aspell.overlap(usenet)
        assert 0.55 * len(aspell) < overlap < 0.70 * len(aspell)

    def test_contains_colloquialisms(self, small_vocab):
        usenet = build_usenet_wordlist(small_vocab).as_set()
        colloquial_covered = len(usenet & set(small_vocab.colloquial))
        assert colloquial_covered > 0.8 * len(small_vocab.colloquial)

    def test_excludes_formal_tail(self, small_vocab):
        usenet = build_usenet_wordlist(small_vocab).as_set()
        assert not (usenet & set(small_vocab.formal))

    def test_frequency_ranked_core_first(self, small_vocab):
        """The head of the ranking is dominated by core words (which are
        61% of the pool but carry ~3x the posting weight of slang)."""
        usenet = build_usenet_wordlist(small_vocab)
        head = usenet.words[:200]
        core = set(small_vocab.core)
        assert sum(1 for word in head if word in core) > 120

    def test_top_k_request(self, small_vocab):
        usenet = build_usenet_wordlist(small_vocab, top_k=100)
        assert len(usenet) == 100

    def test_top_k_exceeding_pool_rejected(self, small_vocab):
        with pytest.raises(ConfigurationError):
            build_usenet_wordlist(small_vocab, top_k=10**7)

    def test_deterministic(self, small_vocab):
        a = build_usenet_wordlist(small_vocab, seed=3)
        b = build_usenet_wordlist(small_vocab, seed=3)
        assert a.words == b.words


class TestAttackWordlist:
    def test_truncated_prefix(self):
        wordlist = AttackWordlist("usenet", "test", ("a", "b", "c", "d"))
        top2 = wordlist.truncated(2)
        assert top2.words == ("a", "b")
        assert top2.name == "usenet-top2"

    def test_truncated_invalid(self):
        wordlist = AttackWordlist("x", "test", ("a",))
        with pytest.raises(ConfigurationError):
            wordlist.truncated(0)

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            AttackWordlist("x", "test", ())

    def test_overlap_symmetric(self):
        a = AttackWordlist("a", "t", ("x", "y", "z"))
        b = AttackWordlist("b", "t", ("y", "z", "w"))
        assert a.overlap(b) == b.overlap(a) == 2

    def test_iteration_and_len(self):
        wordlist = AttackWordlist("a", "t", ("x", "y"))
        assert list(wordlist) == ["x", "y"]
        assert len(wordlist) == 2


class TestPaperScaleCalibration:
    """The headline counts from Sections 3.2 / 4.2 at full scale."""

    @pytest.fixture(scope="class")
    def paper_vocab(self) -> Vocabulary:
        return Vocabulary.build(PAPER_PROFILE, seed=0)

    def test_aspell_is_98568_words(self, paper_vocab):
        assert len(build_aspell_dictionary(paper_vocab)) == 98_568

    def test_usenet_is_90000_words(self, paper_vocab):
        assert len(build_usenet_wordlist(paper_vocab)) == 90_000

    def test_overlap_near_61000(self, paper_vocab):
        aspell = build_aspell_dictionary(paper_vocab)
        usenet = build_usenet_wordlist(paper_vocab)
        assert 57_000 < aspell.overlap(usenet) < 63_000
