#!/usr/bin/env python3
"""Coverage-floor gate with per-package floors.

Reads a Cobertura-format ``coverage.xml`` (what ``pytest --cov=repro
--cov-report=xml`` writes) and fails unless every configured region
meets its floor.  The policy, enforced by the CI coverage leg:

* ``src/repro/stream/`` — the streaming subsystem's pooled line rate
  must be at least 90%;
* ``src/repro/spambayes/ndkernel.py`` — the vectorized kernel ships
  covered: at least 90%;
* ``src/repro/engine/sharedmem.py`` — the shared-memory corpus
  transport: at least 90%;
* ``src/repro/serve/`` — the always-on filter service (framing,
  micro-batcher, daemon, client): at least 90%;
* optionally (``--total-floor``), the whole ``repro`` package must
  meet a (lower) overall floor.

Regions are declared with the repeatable ``--region PREFIX=FLOOR``
flag; when none is given the default policy above applies.  A region
prefix matches whole directories (``repro/stream/``) and single files
(``repro/spambayes/ndkernel.py``) alike.

Only the stdlib ``xml.etree`` is used, so the gate itself needs no
third-party packages — only the producing pytest run needs
``pytest-cov``.

Run (as CI does)::

    PYTHONPATH=src python -m pytest --cov=repro --cov-report=xml:coverage.xml
    python tools/check_coverage.py coverage.xml

Exit status 0 when every floor holds, 1 otherwise (with a per-file
report of the offending region).
"""

from __future__ import annotations

import argparse
import sys
import xml.etree.ElementTree as ET
from pathlib import Path

__all__ = ["DEFAULT_REGIONS", "measure", "main"]

# (prefix, floor-percent): the repo's standing coverage policy.
DEFAULT_REGIONS: tuple[tuple[str, float], ...] = (
    ("repro/stream/", 90.0),
    ("repro/spambayes/ndkernel.py", 90.0),
    ("repro/engine/sharedmem.py", 90.0),
    ("repro/storage/", 90.0),
    ("repro/serve/", 90.0),
)


def measure(coverage_xml: Path, prefix: str) -> tuple[int, int, list[tuple[str, int, int]]]:
    """Pooled (covered, total) line counts for files under ``prefix``.

    Returns ``(covered, total, per_file)`` where ``per_file`` holds
    ``(filename, covered, total)`` rows.  Filenames in the report are
    relative to the source root pytest-cov ran under, so ``prefix`` is
    matched against both the raw filename and its tail (an absolute
    ``src/`` root keeps ``repro/stream/...`` intact either way).
    """
    tree = ET.parse(coverage_xml)
    covered = total = 0
    per_file: list[tuple[str, int, int]] = []
    for cls in tree.iter("class"):
        filename = cls.get("filename", "")
        normalized = filename.replace("\\", "/")
        if not (normalized.startswith(prefix) or f"/{prefix}" in f"/{normalized}"):
            continue
        file_covered = file_total = 0
        for line in cls.iter("line"):
            file_total += 1
            if int(line.get("hits", "0")) > 0:
                file_covered += 1
        covered += file_covered
        total += file_total
        per_file.append((filename, file_covered, file_total))
    return covered, total, per_file


def _percent(covered: int, total: int) -> float:
    return 100.0 * covered / total if total else 0.0


def _parse_region(raw: str) -> tuple[str, float]:
    prefix, sep, floor = raw.rpartition("=")
    if not sep or not prefix:
        raise argparse.ArgumentTypeError(
            f"region {raw!r} is not of the form PREFIX=FLOOR"
        )
    try:
        return prefix, float(floor)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(
            f"region {raw!r} has a non-numeric floor"
        ) from exc


def check_region(coverage_xml: Path, prefix: str, floor: float) -> bool:
    """Print one region's report; return True when its floor holds."""
    covered, total, per_file = measure(coverage_xml, prefix)
    if total == 0:
        print(f"coverage gate: no measured lines under {prefix!r}")
        return False
    rate = _percent(covered, total)
    print(f"coverage gate: {prefix} {covered}/{total} lines = {rate:.1f}% "
          f"(floor {floor:.0f}%)")
    if len(per_file) > 1:
        for filename, file_covered, file_total in sorted(per_file):
            print(f"  {filename}: {_percent(file_covered, file_total):5.1f}% "
                  f"({file_covered}/{file_total})")
    if rate < floor:
        print(f"coverage gate: FAIL — {prefix} below the {floor:.0f}% floor")
        return False
    return True


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("coverage_xml", type=Path, help="Cobertura XML report")
    parser.add_argument(
        "--region",
        action="append",
        type=_parse_region,
        metavar="PREFIX=FLOOR",
        help="source prefix and its minimum pooled line coverage percent; "
        "repeatable (default: the repo policy, see module docstring)",
    )
    parser.add_argument(
        "--total-floor",
        type=float,
        default=None,
        help="optional minimum for the whole report",
    )
    args = parser.parse_args(argv)

    if not args.coverage_xml.exists():
        print(f"coverage gate: report {args.coverage_xml} does not exist")
        return 1
    regions = tuple(args.region) if args.region else DEFAULT_REGIONS
    failed = False
    for prefix, floor in regions:
        if not check_region(args.coverage_xml, prefix, floor):
            failed = True

    if args.total_floor is not None:
        all_covered, all_total, _ = measure(args.coverage_xml, "")
        all_rate = _percent(all_covered, all_total)
        print(f"coverage gate: total {all_covered}/{all_total} lines = "
              f"{all_rate:.1f}% (floor {args.total_floor:.0f}%)")
        if all_rate < args.total_floor:
            print("coverage gate: FAIL — total coverage below floor")
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
