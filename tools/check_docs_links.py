#!/usr/bin/env python3
"""Docs link checker: fail when README/docs reference things that
don't exist.

Checked, across ``README.md`` and every ``docs/*.md``:

* **markdown links** ``[text](target)`` — non-URL targets must exist
  on disk (anchors are stripped; ``#section`` fragments within a file
  are not resolved);
* **path-looking code spans** — a backtick span that looks like a repo
  path (contains ``/`` and a known extension, or starts with a
  top-level source directory) must exist on disk;
* **CLI invocations** — every ``python -m repro <artifact> …`` mention
  must name subcommands that :data:`repro.cli.ARTIFACTS` actually
  registers (or ``all``), and flags the artifact parser defines.
  ``python -m repro run-scenario <name> …`` and ``python -m repro
  replicate <name> …`` are their own grammars: the word after the
  command must be a registered scenario name and flags are checked
  against the respective parser — a scenario name or ``--set``
  outside those invocations is still flagged, exactly as the real
  CLI would reject it.

Run directly (``make docs-check``)::

    PYTHONPATH=src python tools/check_docs_links.py

Exit status 0 when clean, 1 with a findings report otherwise.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

DOC_FILES = ["README.md", *sorted(p.relative_to(REPO_ROOT).as_posix() for p in (REPO_ROOT / "docs").glob("*.md"))]

MARKDOWN_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
CODE_SPAN = re.compile(r"`([^`\n]+)`")
CLI_CALL = re.compile(r"python -m repro\s+((?:[\w.-]+\s*)+)")
PATH_EXTENSIONS = (".py", ".md", ".ini", ".txt", ".toml", ".cfg", ".json")
SOURCE_PREFIXES = ("src/", "docs/", "tests/", "benchmarks/", "examples/", "tools/")


def looks_like_repo_path(span: str) -> bool:
    if any(ch in span for ch in " <>{}$(*"):  # commands, placeholders, globs
        return False
    if "://" in span:
        return False
    if span.startswith(SOURCE_PREFIXES):
        return True
    return "/" in span and span.endswith(PATH_EXTENSIONS)


def check_cli_invocation(doc: Path, words: list[str], cli: dict) -> list[str]:
    """Validate one ``python -m repro …`` word sequence.

    Several grammars, mirroring the real CLI's dispatch: scenario
    commands (``run-scenario <scenario-name> [scenario flags]``,
    ``replicate <scenario-name> [replicate flags]``,
    ``list-scenarios``) and the artifact grammar (artifact names +
    artifact flags).  Words valid in one grammar are *not* accepted in
    the others.
    """
    problems: list[str] = []
    if words and words[0] == "run-scenario":
        valid_words, valid_flags = cli["scenario_names"], cli["scenario_flags"]
        words = words[1:]
    elif words and words[0] == "replicate":
        valid_words, valid_flags = cli["scenario_names"], cli["replicate_flags"]
        words = words[1:]
    elif words and words[0] == "list-scenarios":
        valid_words, valid_flags = set(), {"-h", "--help"}
        words = words[1:]
    elif words and words[0] == "serve":
        valid_words, valid_flags = set(), cli["serve_flags"]
        words = words[1:]
    elif words and words[0] == "gc-shm":
        valid_words, valid_flags = set(), cli["gc_shm_flags"]
        words = words[1:]
    elif words and words[0] == "gc":
        valid_words, valid_flags = set(), cli["gc_flags"]
        words = words[1:]
    else:
        valid_words, valid_flags = cli["artifacts"], cli["artifact_flags"]
    seen_flag = False
    skip_value = False
    for word in words:
        if skip_value:  # the previous word was a value-taking flag
            skip_value = False
            continue
        if word.startswith("--"):
            seen_flag = True
            flag = word.split("=", 1)[0]
            if flag not in valid_flags:
                problems.append(f"{doc.name}: unknown CLI flag {flag!r}")
            skip_value = "=" not in word
            continue
        if seen_flag or word.endswith(("…", "...")):
            continue  # flag values / elided continuations in prose
        if word not in valid_words:
            problems.append(f"{doc.name}: unknown CLI subcommand {word!r}")
            break  # everything after an unknown word is its args
    return problems


ENV_VAR = re.compile(r"\bREPRO_[A-Z_]+\b")


def known_env_vars() -> set[str]:
    """Every ``REPRO_*`` knob the code actually reads.

    Sourced from the live constants where they exist so a renamed knob
    fails docs-check instead of silently orphaning its walkthrough.
    """
    from repro.engine.faults import FAULTS_ENV
    from repro.engine.sharedmem import SHM_ENV
    from repro.engine.supervise import DEGRADE_ENV, RETRIES_ENV, TIMEOUT_ENV
    from repro.spambayes.ndkernel import KERNEL_ENV
    from repro.storage import STORE_DIR_ENV, STORE_ENV

    return {
        FAULTS_ENV,
        SHM_ENV,
        TIMEOUT_ENV,
        RETRIES_ENV,
        DEGRADE_ENV,
        KERNEL_ENV,
        STORE_ENV,
        STORE_DIR_ENV,
        # Read inline via os.environ rather than a named constant:
        "REPRO_WORKERS",
        "REPRO_SEED",
        "REPRO_SCALE",
        "REPRO_EXAMPLE_SCALE",
    }


def check_file(doc: Path, cli: dict) -> list[str]:
    problems: list[str] = []
    text = doc.read_text(encoding="utf-8")

    for match in MARKDOWN_LINK.finditer(text):
        target = match.group(1).split("#", 1)[0]
        if not target or "://" in target or target.startswith("mailto:"):
            continue
        resolved = (doc.parent / target) if not target.startswith("/") else REPO_ROOT / target.lstrip("/")
        if not resolved.exists():
            problems.append(f"{doc.name}: broken link target {target!r}")

    for match in CODE_SPAN.finditer(text):
        span = match.group(1).strip()
        for var in ENV_VAR.findall(span):
            if var not in cli["env_vars"]:
                problems.append(
                    f"{doc.name}: unknown environment variable {var!r}"
                )
        if not looks_like_repo_path(span):
            continue
        if not (REPO_ROOT / span).exists():
            problems.append(f"{doc.name}: referenced path {span!r} does not exist")

    for match in CLI_CALL.finditer(text):
        problems.extend(check_cli_invocation(doc, match.group(1).split(), cli))
    return problems


def _flags_of(parser) -> set[str]:
    return {
        option for action in parser._actions for option in action.option_strings
    }


def cli_tables() -> dict:
    """The live CLI grammar :func:`check_file` validates against.

    One construction point, shared with ``tests/test_docs_links.py``:
    scenario names are valid only directly after ``run-scenario``,
    mirroring the real dispatch, and they are read from the live
    registry — docs cannot name an unregistered scenario.
    """
    from repro.cli import (
        ARTIFACTS,
        build_gc_parser,
        build_gc_shm_parser,
        build_parser,
        build_replicate_parser,
        build_run_scenario_parser,
        build_serve_parser,
    )
    from repro.scenarios import scenario_names

    return {
        "artifacts": set(ARTIFACTS) | {"all"},
        "artifact_flags": _flags_of(build_parser()),
        "scenario_names": set(scenario_names()),
        "scenario_flags": _flags_of(build_run_scenario_parser()),
        "replicate_flags": _flags_of(build_replicate_parser()),
        "serve_flags": _flags_of(build_serve_parser()),
        "gc_shm_flags": _flags_of(build_gc_shm_parser()),
        "gc_flags": _flags_of(build_gc_parser()),
        "env_vars": known_env_vars(),
    }


def main() -> int:
    cli = cli_tables()
    problems: list[str] = []
    for name in DOC_FILES:
        doc = REPO_ROOT / name
        if not doc.exists():
            problems.append(f"expected documentation file missing: {name}")
            continue
        problems.extend(check_file(doc, cli))
    if problems:
        print(f"docs-check: {len(problems)} problem(s)")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    print(
        f"docs-check: OK ({len(DOC_FILES)} files, CLI artifacts: "
        f"{sorted(cli['artifacts'])}, scenarios: {sorted(cli['scenario_names'])})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
