#!/usr/bin/env python3
"""Docs link checker: fail when README/docs reference things that
don't exist.

Checked, across ``README.md`` and every ``docs/*.md``:

* **markdown links** ``[text](target)`` — non-URL targets must exist
  on disk (anchors are stripped; ``#section`` fragments within a file
  are not resolved);
* **path-looking code spans** — a backtick span that looks like a repo
  path (contains ``/`` and a known extension, or starts with a
  top-level source directory) must exist on disk;
* **CLI invocations** — every ``python -m repro <artifact> …`` mention
  must name subcommands that :data:`repro.cli.ARTIFACTS` actually
  registers (or ``all``), and flags it actually defines.

Run directly (``make docs-check``)::

    PYTHONPATH=src python tools/check_docs_links.py

Exit status 0 when clean, 1 with a findings report otherwise.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

DOC_FILES = ["README.md", *sorted(p.relative_to(REPO_ROOT).as_posix() for p in (REPO_ROOT / "docs").glob("*.md"))]

MARKDOWN_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
CODE_SPAN = re.compile(r"`([^`\n]+)`")
CLI_CALL = re.compile(r"python -m repro\s+((?:[\w.-]+\s*)+)")
PATH_EXTENSIONS = (".py", ".md", ".ini", ".txt", ".toml", ".cfg", ".json")
SOURCE_PREFIXES = ("src/", "docs/", "tests/", "benchmarks/", "examples/", "tools/")


def looks_like_repo_path(span: str) -> bool:
    if any(ch in span for ch in " <>{}$(*"):  # commands, placeholders, globs
        return False
    if "://" in span:
        return False
    if span.startswith(SOURCE_PREFIXES):
        return True
    return "/" in span and span.endswith(PATH_EXTENSIONS)


def check_file(doc: Path, cli_artifacts: set[str], cli_flags: set[str]) -> list[str]:
    problems: list[str] = []
    text = doc.read_text(encoding="utf-8")

    for match in MARKDOWN_LINK.finditer(text):
        target = match.group(1).split("#", 1)[0]
        if not target or "://" in target or target.startswith("mailto:"):
            continue
        resolved = (doc.parent / target) if not target.startswith("/") else REPO_ROOT / target.lstrip("/")
        if not resolved.exists():
            problems.append(f"{doc.name}: broken link target {target!r}")

    for match in CODE_SPAN.finditer(text):
        span = match.group(1).strip()
        if not looks_like_repo_path(span):
            continue
        if not (REPO_ROOT / span).exists():
            problems.append(f"{doc.name}: referenced path {span!r} does not exist")

    for match in CLI_CALL.finditer(text):
        seen_flag = False
        skip_value = False
        for word in match.group(1).split():
            if skip_value:  # the previous word was a value-taking flag
                skip_value = False
                continue
            if word.startswith("--"):
                seen_flag = True
                flag = word.split("=", 1)[0]
                if flag not in cli_flags:
                    problems.append(f"{doc.name}: unknown CLI flag {flag!r}")
                skip_value = "=" not in word
                continue
            if seen_flag or word.endswith(("…", "...")):
                continue  # flag values / elided continuations in prose
            if word not in cli_artifacts:
                problems.append(f"{doc.name}: unknown CLI subcommand {word!r}")
                break  # everything after an unknown word is its args
    return problems


def main() -> int:
    from repro.cli import ARTIFACTS, build_parser

    cli_artifacts = set(ARTIFACTS) | {"all"}
    cli_flags = {
        option
        for action in build_parser()._actions
        for option in action.option_strings
    }
    problems: list[str] = []
    for name in DOC_FILES:
        doc = REPO_ROOT / name
        if not doc.exists():
            problems.append(f"expected documentation file missing: {name}")
            continue
        problems.extend(check_file(doc, cli_artifacts, cli_flags))
    if problems:
        print(f"docs-check: {len(problems)} problem(s)")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    print(f"docs-check: OK ({len(DOC_FILES)} files, CLI artifacts: {sorted(cli_artifacts)})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
