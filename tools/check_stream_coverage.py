#!/usr/bin/env python3
"""Back-compat shim: the coverage gate moved to ``check_coverage.py``.

This entry point predates the per-package floor policy; it gated only
``src/repro/stream/``.  It now delegates to
:mod:`tools.check_coverage`, translating the old single-prefix flags
into one ``--region`` declaration so existing invocations keep
working::

    python tools/check_stream_coverage.py coverage.xml --floor 90

is exactly::

    python tools/check_coverage.py coverage.xml --region repro/stream/=90

Prefer ``check_coverage.py`` directly — it also enforces the NumPy
kernel and shared-memory transport floors.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from check_coverage import main as _check_coverage_main, measure  # noqa: E402

__all__ = ["measure", "main"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("coverage_xml", type=Path, help="Cobertura XML report")
    parser.add_argument("--prefix", default="repro/stream/")
    parser.add_argument("--floor", type=float, default=90.0)
    parser.add_argument("--total-floor", type=float, default=None)
    args = parser.parse_args(argv)
    forwarded = [str(args.coverage_xml), "--region", f"{args.prefix}={args.floor}"]
    if args.total_floor is not None:
        forwarded += ["--total-floor", str(args.total_floor)]
    return _check_coverage_main(forwarded)


if __name__ == "__main__":
    sys.exit(main())
